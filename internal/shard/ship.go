package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"incgraph/internal/obs"
	"incgraph/internal/serve"
	"incgraph/internal/trace"
	"incgraph/internal/wal"
)

// This file is the replication half of sharded serving: log shipping.
// A primary shard daemon exposes its WAL through (*wal.Log).StreamHandler
// (mounted under /wal/); a warm replica runs a Follower, which pulls
// segment bytes and checkpoints into its own data directory and replays
// every newly complete record through the same Apply path recovery
// uses. Promotion is then cheap: stop the follower loop, read off the
// per-algo stream positions it reached, and host the maintainers from
// exactly that base. Replication is asynchronous — updates acked by the
// primary but not yet shipped are lost on promotion, and the epoch
// vector is what makes that loss visible instead of silent.

// ShipProgress describes one PullWAL cycle: what was fetched and how far
// the local mirror still trails the primary's listing. The lag fields
// are measured after the pull, so a fully caught-up replica reports
// zero for both.
type ShipProgress struct {
	// Shipped counts segment bytes fetched by this cycle.
	Shipped int64
	// RemoteBytes is the total segment size the primary listed.
	RemoteBytes int64
	// LagBytes is how many listed bytes are still missing locally.
	LagBytes int64
	// LagSegments counts listed segments not yet fully mirrored.
	LagSegments int
}

// PullWAL mirrors the primary's WAL directory into dir: the newest
// checkpoint (if any, fetched once) and every listed segment's missing
// byte range. src is the primary's base URL; the stream endpoints are
// expected under src+"/wal". It returns the number of segment bytes
// fetched. Safe to call repeatedly; each call ships only what is new.
func PullWAL(ctx context.Context, hc *http.Client, src, dir string) (int64, error) {
	p, err := PullWALStatus(ctx, hc, src, dir)
	return p.Shipped, err
}

// PullWALStatus is PullWAL reporting full ship progress — the
// replication-lag measurement a follower turns into gauges.
func PullWALStatus(ctx context.Context, hc *http.Client, src, dir string) (ShipProgress, error) {
	var p ShipProgress
	if hc == nil {
		hc = defaultShardClient
	}
	var lst wal.StreamListing
	if err := getJSON(ctx, hc, src+"/wal/segments", &lst); err != nil {
		return p, fmt.Errorf("shard: list segments: %w", err)
	}
	if lst.CheckpointSeq > 0 {
		name := wal.CheckpointName(lst.CheckpointSeq)
		if _, err := os.Stat(filepath.Join(dir, name)); os.IsNotExist(err) {
			if err := fetchToFile(ctx, hc, src+"/wal/checkpoint", filepath.Join(dir, name)); err != nil {
				return p, fmt.Errorf("shard: fetch checkpoint: %w", err)
			}
		}
	}
	var pullErr error
	for _, seg := range lst.Segments {
		p.RemoteBytes += seg.Size
		if pullErr == nil {
			n, err := pullSegment(ctx, hc, src, dir, seg)
			p.Shipped += n
			pullErr = err
		}
		var local int64
		if fi, err := os.Stat(filepath.Join(dir, wal.SegmentName(seg.Seq))); err == nil {
			local = fi.Size()
		}
		if local < seg.Size {
			p.LagBytes += seg.Size - local
			p.LagSegments++
		}
	}
	return p, pullErr
}

// pullSegment ships the missing suffix of one segment, chunk by chunk,
// up to the size the listing reported (later bytes arrive next cycle).
func pullSegment(ctx context.Context, hc *http.Client, src, dir string, seg wal.SegmentInfo) (int64, error) {
	path := filepath.Join(dir, wal.SegmentName(seg.Seq))
	var local int64
	if fi, err := os.Stat(path); err == nil {
		local = fi.Size()
	}
	var shipped int64
	for local < seg.Size {
		url := fmt.Sprintf("%s/wal/segment/%d?off=%d", src, seg.Seq, local)
		n, err := appendToFile(ctx, hc, url, path)
		shipped += n
		if err != nil {
			return shipped, fmt.Errorf("shard: ship %s: %w", wal.SegmentName(seg.Seq), err)
		}
		if n == 0 {
			break // primary pruned or truncated the listing raced; retry next cycle
		}
		local += n
	}
	return shipped, nil
}

func getJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// fetchToFile downloads url into path atomically (tmp + rename), so a
// crashed fetch never leaves a torn checkpoint with a valid name.
func fetchToFile(ctx context.Context, hc *http.Client, url, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ship-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// appendToFile streams url's body onto the end of path, returning the
// byte count. Segments are append-only on both sides, so plain O_APPEND
// is exact.
func appendToFile(ctx context.Context, hc *http.Client, url, path string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// FollowerOptions configure a warm replica's ship-and-replay loop.
type FollowerOptions struct {
	// Source is the primary's base URL (WAL endpoints under /wal).
	Source string
	// Dir is the local data directory the WAL is shipped into — the
	// directory the replica will serve durably from after promotion.
	Dir string
	// Targets maps algo names to un-hosted maintainers the replayed
	// records are applied to. The follower is their only writer until
	// promotion.
	Targets map[string]serve.Serveable
	// ReplayFrom is the first WAL segment to tail (a recovered
	// checkpoint's ReplayFrom; 0 tails from the oldest shipped segment).
	ReplayFrom uint64
	// BaseEpochs/BaseBatches seed the per-algo stream accounting with
	// the recovered checkpoint's positions.
	BaseEpochs  map[string]uint64
	BaseBatches map[string]uint64
	// Interval is the poll cadence (default 100ms — replication lag is
	// bounded by this plus transfer time).
	Interval time.Duration
	// Client overrides the HTTP client used against the primary.
	Client *http.Client
	// Logf receives follower progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Registry, when set, receives the replication-lag gauges
	// (incgraph_replica_lag_{segments,bytes,seconds} and the shipped-byte
	// counter) so a replica's /metrics scrape carries real lag numbers.
	Registry *obs.Registry
	// Recorder, when set, receives one replay span per applied WAL
	// record, tagged with the trace ID the record was logged under — the
	// piece that makes a replica's replay appear in the cluster-merged
	// timeline of the original request.
	Recorder *trace.Recorder
}

// Follower runs continuous log shipping for one replica: pull new WAL
// bytes from the primary, replay newly complete records into the target
// maintainers, repeat. All applies happen on the follower goroutine, so
// the maintainers see a single writer — the same contract the serving
// apply loop provides.
type Follower struct {
	opt   FollowerOptions
	tail  *wal.Tail
	track int32 // replication track on opt.Recorder, 0 when untraced

	// applyMu serializes maintainer applies against View snapshots, so a
	// stale read taken mid-replay still sees a record-aligned state.
	applyMu sync.Mutex

	// pullFails/skipTicks implement deterministic pull backoff: after k
	// consecutive pull errors the follower skips min(2^k,16)-1 ticks
	// before contacting the primary again, so a dead primary is probed at
	// a trickle instead of every interval. Local replay still runs every
	// tick — shipped bytes keep draining regardless.
	pullFails int
	skipTicks int

	mu         sync.Mutex
	epochs     map[string]uint64
	batches    map[string]uint64
	shipped    int64
	records    uint64
	lastErr    error
	lagSegs    int
	lagBytes   int64
	lastRecNs  int64 // Nanos of the newest replayed record (0 = none seen)
	behindSecs float64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewFollower builds a follower; call Run (usually in a goroutine) to
// start shipping.
func NewFollower(opt FollowerOptions) *Follower {
	if opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	f := &Follower{
		opt:     opt,
		tail:    wal.NewTail(opt.Dir, opt.ReplayFrom),
		epochs:  make(map[string]uint64),
		batches: make(map[string]uint64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for a, e := range opt.BaseEpochs {
		f.epochs[a] = e
	}
	for a, b := range opt.BaseBatches {
		f.batches[a] = b
	}
	if opt.Recorder != nil {
		f.track = opt.Recorder.Track("replication")
	}
	if reg := opt.Registry; reg != nil {
		reg.GaugeFunc("incgraph_replica_lag_segments",
			"WAL segments listed by the primary but not fully mirrored.",
			func() float64 { return float64(f.Status().LagSegments) })
		reg.GaugeFunc("incgraph_replica_lag_bytes",
			"WAL bytes listed by the primary but not yet shipped.",
			func() float64 { return float64(f.Status().LagBytes) })
		reg.GaugeFunc("incgraph_replica_lag_seconds",
			"Seconds behind the primary: age of the newest replayed record while lagging, 0 when caught up.",
			func() float64 { return f.Status().LagSeconds })
		reg.GaugeFunc("incgraph_replica_shipped_bytes",
			"Segment bytes fetched from the primary since the follower started.",
			func() float64 { return float64(f.Status().ShippedBytes) })
		reg.GaugeFunc("incgraph_replica_records",
			"WAL records replayed into the replica's maintainers.",
			func() float64 { return float64(f.Status().Records) })
	}
	return f
}

// Run ships and replays until Stop. It returns after the final
// drain: one last replay pass over whatever bytes made it to disk, so a
// promotion sees every shipped record applied.
func (f *Follower) Run() {
	f.startOnce.Do(func() {
		defer close(f.done)
		tick := time.NewTicker(f.opt.Interval)
		defer tick.Stop()
		for {
			f.cycle()
			select {
			case <-f.stop:
				// Final drain: the primary may be gone (that is why we
				// are stopping), but locally shipped bytes must all be
				// applied before the replica can serve.
				f.replayLocal()
				return
			case <-tick.C:
			}
		}
	})
}

// cycle is one pull+replay round. Consecutive pull failures back the
// pull off exponentially (skip 1, 3, 7, … up to 15 ticks between
// probes); replay always runs so already-shipped bytes drain even while
// the primary is unreachable.
func (f *Follower) cycle() {
	if f.skipTicks > 0 {
		f.skipTicks--
		f.replayLocal()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := PullWALStatus(ctx, f.opt.Client, f.opt.Source, f.opt.Dir)
	if err != nil {
		f.pullFails++
		skip := 1 << f.pullFails
		if skip > 16 {
			skip = 16
		}
		f.skipTicks = skip - 1
	} else {
		f.pullFails = 0
		f.skipTicks = 0
	}
	f.mu.Lock()
	f.shipped += p.Shipped
	f.lagSegs = p.LagSegments
	f.lagBytes = p.LagBytes
	f.lastErr = err
	f.mu.Unlock()
	if err != nil {
		f.opt.Logf("follower: pull from %s: %v (next probe in %d ticks)", f.opt.Source, err, f.skipTicks+1)
	}
	f.replayLocal()
}

// replayLocal advances the tail over shipped bytes, applying each record
// to its targets with the same coalescing the serving path uses.
func (f *Follower) replayLocal() {
	emitted, err := f.tail.Advance(func(rec wal.Record) error {
		var span trace.Span
		if f.opt.Recorder != nil {
			span = f.opt.Recorder.Begin("replay", "ship", f.track)
			span.SetTrace(trace.TraceID(rec.Trace))
			span.Arg("updates", int64(len(rec.Batch)))
			if rec.Nanos > 0 {
				span.Arg("record_age_ns", time.Now().UnixNano()-rec.Nanos)
			}
		}
		apply := func(name string, m serve.Serveable) {
			f.applyMu.Lock()
			m.Apply(rec.Batch.Net(m.Graph().Directed()))
			f.mu.Lock()
			f.epochs[name] += uint64(len(rec.Batch))
			f.batches[name]++
			f.mu.Unlock()
			f.applyMu.Unlock()
		}
		if rec.Algo == "" {
			for name, m := range f.opt.Targets {
				apply(name, m)
			}
		} else if m, ok := f.opt.Targets[rec.Algo]; ok {
			apply(rec.Algo, m)
		}
		if rec.Nanos > 0 {
			f.mu.Lock()
			f.lastRecNs = rec.Nanos
			f.mu.Unlock()
		}
		if f.opt.Recorder != nil {
			span.End()
		}
		return nil
	})
	f.mu.Lock()
	f.records += uint64(emitted)
	if err != nil {
		f.lastErr = err
	}
	// Seconds-behind: while bytes are still missing, the replica is at
	// best as fresh as the newest record it replayed; once the mirror is
	// byte-complete and drained, it is caught up (0), regardless of how
	// old the last record is on an idle primary.
	if f.lagBytes > 0 && f.lastRecNs > 0 {
		f.behindSecs = time.Duration(time.Now().UnixNano() - f.lastRecNs).Seconds()
		if f.behindSecs < 0 {
			f.behindSecs = 0
		}
	} else {
		f.behindSecs = 0
	}
	f.mu.Unlock()
	if err != nil {
		f.opt.Logf("follower: replay: %v", err)
	}
	if emitted > 0 {
		f.opt.Logf("follower: replayed %d records (epochs %v)", emitted, f.Epochs())
	}
}

// Stop halts the loop and blocks until the final local drain finished.
// After Stop returns, the targets reflect every shipped record and no
// goroutine touches them — the caller may host them.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Epochs returns the per-algo stream positions the replica has applied
// up to — the BaseEpoch a promoted host must resume from.
func (f *Follower) Epochs() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.epochs))
	for a, e := range f.epochs {
		out[a] = e
	}
	return out
}

// Batches returns the per-algo applied record counts (the BaseBatches
// for promotion).
func (f *Follower) Batches() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.batches))
	for a, b := range f.batches {
		out[a] = b
	}
	return out
}

// View serves a stale read from the replica's maintainers while the
// follower is still running — the surface a router falls back to when
// the primary's breaker is open. The view is always stamped Degraded:
// it trails the primary by the replication lag, and the epoch says by
// exactly how much. Returns false for an algo the replica does not
// host.
func (f *Follower) View(algo string) (serve.View, bool) {
	m, ok := f.opt.Targets[algo]
	if !ok {
		return serve.View{}, false
	}
	f.applyMu.Lock()
	data := m.Snapshot()
	f.mu.Lock()
	v := serve.View{
		Algo:     algo,
		Epoch:    f.epochs[algo],
		Batches:  f.batches[algo],
		Degraded: true,
		Data:     data,
	}
	f.mu.Unlock()
	f.applyMu.Unlock()
	return v, true
}

// Status reports the follower's replication progress.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStatus{
		Source:       f.opt.Source,
		ShippedBytes: f.shipped,
		Records:      f.records,
		LagSegments:  f.lagSegs,
		LagBytes:     f.lagBytes,
		LagSeconds:   f.behindSecs,
		Epochs:       make(map[string]uint64, len(f.epochs)),
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	for a, e := range f.epochs {
		st.Epochs[a] = e
	}
	return st
}

// FollowerStatus is the JSON shape of a replica's /replica/status.
type FollowerStatus struct {
	// Source is the primary being followed.
	Source string `json:"source"`
	// ShippedBytes counts segment bytes fetched since start.
	ShippedBytes int64 `json:"shipped_bytes"`
	// Records counts WAL records replayed (lifetime of the tail).
	Records uint64 `json:"records"`
	// LagSegments counts primary segments not yet fully mirrored, as of
	// the last pull cycle.
	LagSegments int `json:"lag_segments"`
	// LagBytes counts primary WAL bytes not yet shipped.
	LagBytes int64 `json:"lag_bytes"`
	// LagSeconds is the seconds-behind-primary estimate: the age of the
	// newest replayed record while bytes are still missing, 0 once the
	// mirror is byte-complete and drained.
	LagSeconds float64 `json:"lag_seconds"`
	// Epochs are the per-algo stream positions applied so far.
	Epochs map[string]uint64 `json:"epochs"`
	// LastError is the most recent pull/replay error, "" when healthy.
	LastError string `json:"last_error,omitempty"`
}
