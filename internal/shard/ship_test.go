package shard

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"incgraph/internal/cc"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
	"incgraph/internal/serve"
	"incgraph/internal/sssp"
	"incgraph/internal/wal"
)

// startWALPrimary opens a WAL in its own directory and serves it over
// the streaming API the way a shard daemon does (under /wal/).
func startWALPrimary(t *testing.T) (*wal.Log, *httptest.Server) {
	t.Helper()
	l, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/wal/", http.StripPrefix("/wal", l.StreamHandler()))
	srv := httptest.NewServer(mux)
	t.Cleanup(func() { srv.Close(); l.Close() })
	return l, srv
}

// TestPullWALIncremental: shipping is idempotent and incremental — a
// second pull with nothing new moves zero bytes; appends (including
// across a segment rotation) ship only the new suffix.
func TestPullWALIncremental(t *testing.T) {
	l, srv := startWALPrimary(t)
	dir := t.TempDir()
	b := graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 3}}
	if err := l.Append(wal.Record{Batch: b}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n1, err := PullWAL(ctx, nil, srv.URL, dir)
	if err != nil || n1 == 0 {
		t.Fatalf("first pull: n=%d err=%v", n1, err)
	}
	n2, err := PullWAL(ctx, nil, srv.URL, dir)
	if err != nil || n2 != 0 {
		t.Fatalf("idle pull moved %d bytes (err=%v)", n2, err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.Record{Algo: "sssp", Batch: b}); err != nil {
		t.Fatal(err)
	}
	n3, err := PullWAL(ctx, nil, srv.URL, dir)
	if err != nil || n3 == 0 {
		t.Fatalf("post-rotation pull: n=%d err=%v", n3, err)
	}
	// The replica directory now mirrors the primary's segments.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 2 {
		t.Fatalf("replica dir has %d entries, want both segments", len(ents))
	}
	for _, e := range ents {
		fi, _ := e.Info()
		if fi.Size() == 0 {
			t.Fatalf("shipped segment %s is empty", e.Name())
		}
	}
}

// TestFollowerReplaysLiveStream: a Follower tailing a primary's WAL
// over HTTP converges its target maintainers to the primary's graph,
// with exact per-algo epoch accounting, including records appended
// while the follower is already running and across a rotation.
func TestFollowerReplaysLiveStream(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := gen.PowerLaw(rng, 120, 5, true)
	primary := base.Clone()

	l, srv := startWALPrimary(t)
	dir := t.TempDir()

	ssspInc := sssp.NewInc(base.Clone(), 0)
	ccInc := cc.NewInc(base.Clone())
	targets := map[string]serve.Serveable{
		"sssp": serve.SSSP(ssspInc, 0),
		"cc":   serve.CC(ccInc),
	}
	f := NewFollower(FollowerOptions{
		Source:   srv.URL,
		Dir:      dir,
		Targets:  targets,
		Interval: 10 * time.Millisecond,
	})
	go f.Run()

	var wantUnits uint64
	appendBatch := func(count int) {
		b := gen.RandomUpdates(rng, primary, count, 0.5)
		primary.Apply(b)
		if err := l.Append(wal.Record{Batch: b}); err != nil {
			t.Fatal(err)
		}
		wantUnits += uint64(len(b))
	}
	appendBatch(30)
	appendBatch(30)
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendBatch(30)

	deadline := time.Now().Add(10 * time.Second)
	for {
		ep := f.Epochs()
		if ep["sssp"] == wantUnits && ep["cc"] == wantUnits {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epochs %v, want %d (status %+v)", ep, wantUnits, f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Stop()

	if got := f.Batches(); got["sssp"] != 3 || got["cc"] != 3 {
		t.Fatalf("batch accounting %v, want 3 per algo", got)
	}
	st := f.Status()
	if st.Records != 3 || st.ShippedBytes == 0 || st.LastError != "" {
		t.Fatalf("status %+v", st)
	}

	// After Stop the targets are exclusively ours: both maintainers must
	// hold exactly the primary's graph and agree with a full recompute.
	if ssspInc.Graph().NumEdges() != primary.NumEdges() {
		t.Fatalf("replica sssp graph has %d edges, primary %d", ssspInc.Graph().NumEdges(), primary.NumEdges())
	}
	wantDist := sssp.Dijkstra(primary, 0)
	gotDist := ssspInc.Dist()
	for v := range wantDist {
		if gotDist[v] != wantDist[v] {
			t.Fatalf("replayed dist[%d] = %d, want %d", v, gotDist[v], wantDist[v])
		}
	}
	wantLabels := cc.CCfp(primary)
	gotLabels := ccInc.Labels()
	for v := range wantLabels {
		if gotLabels[v] != wantLabels[v] {
			t.Fatalf("replayed label[%d] = %d, want %d", v, gotLabels[v], wantLabels[v])
		}
	}
}

// TestFollowerSurvivesDeadPrimary: pulls fail, the error is surfaced in
// Status, and Stop still drains cleanly.
func TestFollowerSurvivesDeadPrimary(t *testing.T) {
	f := NewFollower(FollowerOptions{
		Source:   "http://127.0.0.1:1", // nothing listens here
		Dir:      t.TempDir(),
		Targets:  map[string]serve.Serveable{},
		Interval: 5 * time.Millisecond,
	})
	go f.Run()
	deadline := time.Now().Add(5 * time.Second)
	for f.Status().LastError == "" {
		if time.Now().After(deadline) {
			t.Fatal("pull failure never surfaced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.Stop()
}
