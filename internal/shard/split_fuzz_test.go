package shard

import (
	"bytes"
	"testing"

	"incgraph/internal/graph"
)

// FuzzSplitBatch drives the router's ingest path — wire decode, then
// split by owning shard — with arbitrary bytes. The decoder must never
// panic on torn input, and any batch it accepts must split with full
// coverage: every update reaches each owning shard exactly once, and no
// shard receives an update it does not own.
func FuzzSplitBatch(f *testing.F) {
	seed := graph.Batch{
		{Kind: graph.InsertEdge, From: 0, To: 1, W: 5},
		{Kind: graph.DeleteEdge, From: 1, To: 2, W: 1},
		{Kind: graph.InsertEdge, From: 3, To: 0, W: 9},
	}
	var buf bytes.Buffer
	if err := graph.WriteBatch(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), uint8(2), true)
	f.Add(buf.Bytes()[:len(buf.Bytes())/2], uint8(3), false) // torn frame
	f.Add([]byte{}, uint8(1), true)
	f.Add([]byte{0xff, 0x00, 0x41}, uint8(4), false)
	f.Fuzz(func(t *testing.T, data []byte, shards uint8, directed bool) {
		b, err := graph.ReadBatch(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := int(shards%8) + 1
		p := NewHashPartitioner(n)
		parts := SplitBatch(p, directed, b)
		if len(parts) != n {
			t.Fatalf("split into %d parts, want %d", len(parts), n)
		}
		total := 0
		for id, sb := range parts {
			total += len(sb)
			for _, u := range sb {
				if !OwnsEdge(p, directed, id, u.From, u.To) {
					t.Fatalf("shard %d received unowned update %v", id, u)
				}
			}
		}
		want := 0
		for _, u := range b {
			want++
			if !directed && IsCut(p, u.From, u.To) {
				want++
			}
		}
		if total != want {
			t.Fatalf("split carries %d updates, want %d (batch %v)", total, want, b)
		}
	})
}
