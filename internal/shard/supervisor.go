package shard

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"incgraph/internal/obs"
	"incgraph/internal/resilience"
)

// Supervisor owns the shard topology as processes: it spawns each shard
// daemon (and its warm replica) as a child, restarts crashed children
// with backoff, probes health, and — when a primary dies or stops
// answering — promotes its replica and repoints the shared routing
// Table. The router never learns any of this happened except through
// the table: health-gated routing and promotion are table writes.
//
// Failover policy: a primary that exits (or fails ProbeFailures
// consecutive probes) while its slot has a live replica is replaced by
// that replica, once; the dead primary is not restarted — its data
// directory is behind the promoted replica's, and restarting it as
// primary would resurrect a stale past. A primary with no replica, and
// any replica, is restarted with backoff until it answers /healthz
// again; while it is down the slot is marked unhealthy and the router
// sheds writes touching it.

// ProcSpec describes one child process the supervisor manages.
type ProcSpec struct {
	// Name labels the child in logs (e.g. "shard0", "shard0-replica").
	Name string
	// Shard is the slot this child belongs to.
	Shard int
	// Replica marks a warm follower (promotion target), as opposed to
	// the slot's primary.
	Replica bool
	// Addr is the child's base URL (http://host:port).
	Addr string
	// Argv is the full command line: binary then arguments.
	Argv []string
}

// SupervisorOptions configure a Supervisor.
type SupervisorOptions struct {
	// Table is the routing table shared with the router; the supervisor
	// is its writer.
	Table *Table
	// Specs lists every child to manage.
	Specs []ProcSpec
	// ProbeInterval is the health-probe cadence (default 250ms).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive failed probes demote a
	// member (default 3).
	ProbeFailures int
	// RestartBackoff is the initial delay before restarting a crashed
	// child; it doubles per consecutive crash up to RestartBackoffMax,
	// with equal jitter (uniform over the upper half of the current
	// ceiling) so members crash-looping on a shared cause don't
	// synchronize their restarts into restorms (default 250ms).
	RestartBackoff time.Duration
	// RestartBackoffMax caps the restart backoff (default
	// 16 × RestartBackoff).
	RestartBackoffMax time.Duration
	// JitterSeed seeds the restart jitter; 0 derives a seed from the
	// wall clock. Tests pin it for reproducible schedules.
	JitterSeed int64
	// Client overrides the HTTP client used for probes and promotion.
	Client *http.Client
	// Logf receives supervisor events; nil discards them.
	Logf func(format string, args ...any)
	// Events, when set, receives every topology action (spawn, exit,
	// restart, probe-fail, promote) for GET /cluster/events; the bounded
	// ring caps memory no matter how unstable the topology gets.
	Events *obs.Ring[TopologyEvent]
}

// TopologyEvent is one supervisor action on the shard topology.
type TopologyEvent struct {
	// UnixNanos is the event's wall-clock time.
	UnixNanos int64 `json:"unix_nanos"`
	// Kind is "spawn", "exit", "restart", "probe-fail", "promote", or
	// "promote-fail".
	Kind string `json:"kind"`
	// Member names the child involved ("shard0", "shard0-replica").
	Member string `json:"member"`
	// Shard is the slot the member belongs to.
	Shard int `json:"shard"`
	// Detail is a human-readable cause or outcome.
	Detail string `json:"detail"`
}

func (o SupervisorOptions) withDefaults() SupervisorOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeFailures <= 0 {
		o.ProbeFailures = 3
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 250 * time.Millisecond
	}
	if o.RestartBackoffMax <= 0 {
		o.RestartBackoffMax = 16 * o.RestartBackoff
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = time.Now().UnixNano()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Supervisor spawns and monitors the children described by its specs.
type Supervisor struct {
	opt SupervisorOptions
	// restartBackoff jitters restart delays; shared across monitors so
	// concurrent crash loops draw decorrelated sleeps.
	restartBackoff *resilience.Backoff

	mu    sync.Mutex
	procs map[string]*managedProc
	// promoted marks slots whose replica has been promoted, so exit
	// monitoring and probing only fail a slot over once.
	promoted map[int]bool

	stopping bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

type managedProc struct {
	spec ProcSpec
	mu   sync.Mutex
	cmd  *exec.Cmd
	// retired children (demoted primaries) are left down on purpose.
	retired bool
}

// NewSupervisor validates the specs against the table and builds a
// supervisor; Start launches the children.
func NewSupervisor(opt SupervisorOptions) (*Supervisor, error) {
	opt = opt.withDefaults()
	if opt.Table == nil {
		return nil, fmt.Errorf("shard: supervisor needs a routing table")
	}
	s := &Supervisor{
		opt:            opt,
		restartBackoff: resilience.NewBackoff(opt.RestartBackoff, opt.RestartBackoffMax, opt.JitterSeed),
		procs:          make(map[string]*managedProc),
		promoted:       make(map[int]bool),
		stop:           make(chan struct{}),
	}
	for _, spec := range opt.Specs {
		if spec.Shard < 0 || spec.Shard >= opt.Table.Shards() {
			return nil, fmt.Errorf("shard: spec %q names slot %d of %d", spec.Name, spec.Shard, opt.Table.Shards())
		}
		if len(spec.Argv) == 0 {
			return nil, fmt.Errorf("shard: spec %q has no command", spec.Name)
		}
		if _, dup := s.procs[spec.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate spec name %q", spec.Name)
		}
		s.procs[spec.Name] = &managedProc{spec: spec}
		if spec.Replica {
			opt.Table.SetReplica(spec.Shard, spec.Addr)
		}
	}
	return s, nil
}

func (s *Supervisor) client() *Client { return &Client{HTTP: s.opt.Client} }

// record pushes a topology event when an event ring is configured.
func (s *Supervisor) record(kind, member string, shard int, detail string) {
	if s.opt.Events != nil {
		s.opt.Events.Push(TopologyEvent{
			UnixNanos: time.Now().UnixNano(),
			Kind:      kind, Member: member, Shard: shard, Detail: detail,
		})
	}
}

// Start spawns every child and begins monitoring and probing. Use
// WaitReady to block until the topology answers health checks.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	procs := make([]*managedProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	for _, p := range procs {
		if err := s.spawn(p); err != nil {
			s.Stop()
			return err
		}
		s.wg.Add(1)
		go s.monitor(p)
	}
	s.wg.Add(1)
	go s.probeLoop()
	return nil
}

// spawn launches p's process, inheriting the supervisor's stderr so
// child logs interleave visibly.
func (s *Supervisor) spawn(p *managedProc) error {
	cmd := exec.Command(p.spec.Argv[0], p.spec.Argv[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("shard: spawn %s: %w", p.spec.Name, err)
	}
	p.mu.Lock()
	p.cmd = cmd
	p.mu.Unlock()
	s.opt.Logf("supervisor: started %s (pid %d) at %s", p.spec.Name, cmd.Process.Pid, p.spec.Addr)
	s.record("spawn", p.spec.Name, p.spec.Shard, fmt.Sprintf("pid %d at %s", cmd.Process.Pid, p.spec.Addr))
	return nil
}

// monitor waits on p's process and reacts to exits: fail over a primary
// with a replica, otherwise restart with backoff.
func (s *Supervisor) monitor(p *managedProc) {
	defer s.wg.Done()
	crashes := 0
	for {
		p.mu.Lock()
		cmd := p.cmd
		p.mu.Unlock()
		if cmd == nil {
			return
		}
		err := cmd.Wait()
		if s.isStopping() {
			return
		}
		s.opt.Logf("supervisor: %s exited: %v", p.spec.Name, err)
		s.record("exit", p.spec.Name, p.spec.Shard, fmt.Sprintf("%v", err))
		if !p.spec.Replica && s.failover(p.spec.Shard, "process exit") {
			p.mu.Lock()
			p.retired = true
			p.mu.Unlock()
			return
		}
		// No replica took over: the slot (or the replica role) is simply
		// down until the restart answers probes again.
		if !p.spec.Replica {
			s.opt.Table.SetHealth(p.spec.Shard, false)
		}
		backoff := s.restartBackoff.DelayFloored(crashes)
		crashes++
		select {
		case <-s.stop:
			return
		case <-time.After(backoff):
		}
		s.record("restart", p.spec.Name, p.spec.Shard, fmt.Sprintf("after %s backoff", backoff))
		if err := s.spawn(p); err != nil {
			s.opt.Logf("supervisor: restart %s: %v", p.spec.Name, err)
			return
		}
	}
}

// failover promotes shard's replica if one is configured, alive, and
// the slot has not already failed over. It returns whether promotion
// happened (and the table now routes to the replica).
func (s *Supervisor) failover(shard int, cause string) bool {
	s.mu.Lock()
	if s.promoted[shard] {
		s.mu.Unlock()
		return true // already failed over; the exiting proc is stale
	}
	replica := s.opt.Table.Replica(shard)
	if replica == "" {
		s.mu.Unlock()
		return false
	}
	// Claim the promotion before releasing the lock so the prober and
	// the exit monitor cannot both run it.
	s.promoted[shard] = true
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := s.client()
	c.Base = replica
	epochs, err := c.Promote(ctx)
	if err != nil {
		s.opt.Logf("supervisor: promote replica %s for shard %d: %v", replica, shard, err)
		s.record("promote-fail", replica, shard, err.Error())
		s.mu.Lock()
		s.promoted[shard] = false
		s.mu.Unlock()
		s.opt.Table.SetHealth(shard, false)
		return false
	}
	if _, err := s.opt.Table.Promote(shard); err != nil {
		s.opt.Logf("supervisor: table promote shard %d: %v", shard, err)
		return false
	}
	s.opt.Logf("supervisor: shard %d failed over to %s (%s; epochs %v)", shard, replica, cause, epochs)
	s.record("promote", replica, shard, fmt.Sprintf("%s; epochs %v", cause, epochs))
	return true
}

// probeLoop health-checks every slot's active member and maintains the
// table's health bits; sustained failure of a primary with a replica
// triggers failover even without a process exit (hangs, not just
// crashes).
func (s *Supervisor) probeLoop() {
	defer s.wg.Done()
	fails := make(map[int]int)
	tick := time.NewTicker(s.opt.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		for i := 0; i < s.opt.Table.Shards(); i++ {
			addr, _ := s.opt.Table.Active(i)
			if addr == "" {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), s.opt.ProbeInterval)
			c := s.client()
			c.Base = addr
			err := c.Healthz(ctx)
			cancel()
			if err == nil {
				fails[i] = 0
				s.opt.Table.SetHealth(i, true)
				continue
			}
			fails[i]++
			if fails[i] < s.opt.ProbeFailures {
				continue
			}
			s.opt.Table.SetHealth(i, false)
			s.record("probe-fail", addr, i, fmt.Sprintf("%d consecutive failures: %v", fails[i], err))
			if !s.slotPromoted(i) && s.failover(i, fmt.Sprintf("%d failed probes", fails[i])) {
				fails[i] = 0
			}
		}
	}
}

// Pid returns the live process id of the named child, if running — the
// handle a chaos test needs to kill -9 a specific member.
func (s *Supervisor) Pid(name string) (int, bool) {
	s.mu.Lock()
	p, ok := s.procs[name]
	s.mu.Unlock()
	if !ok {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil || p.cmd.Process == nil {
		return 0, false
	}
	return p.cmd.Process.Pid, true
}

func (s *Supervisor) slotPromoted(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted[i]
}

func (s *Supervisor) isStopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping
}

// WaitReady blocks until every slot's active member answers /healthz,
// or the timeout elapses.
func (s *Supervisor) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		for i := 0; i < s.opt.Table.Shards(); i++ {
			addr, _ := s.opt.Table.Active(i)
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			c := s.client()
			c.Base = addr
			err := c.Healthz(ctx)
			cancel()
			if err == nil {
				ready++
			}
		}
		if ready == s.opt.Table.Shards() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: topology not ready after %s (%d/%d healthy)",
				timeout, ready, s.opt.Table.Shards())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Stop terminates every child gracefully (SIGTERM, then SIGKILL after a
// grace period) and waits for the monitors to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.stopping = true
	procs := make([]*managedProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	close(s.stop)
	for _, p := range procs {
		p.mu.Lock()
		cmd := p.cmd
		p.mu.Unlock()
		if cmd == nil || cmd.Process == nil {
			continue
		}
		cmd.Process.Signal(syscall.SIGTERM)
	}
	graceDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(graceDone)
	}()
	select {
	case <-graceDone:
	case <-time.After(5 * time.Second):
		for _, p := range procs {
			p.mu.Lock()
			cmd := p.cmd
			p.mu.Unlock()
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
		s.wg.Wait()
	}
}
