package shard

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incgraph/internal/obs"
)

func TestNewSupervisorValidation(t *testing.T) {
	table := NewTable([]string{"http://a", "http://b"})
	ok := ProcSpec{Name: "shard0", Shard: 0, Addr: "http://a", Argv: []string{"true"}}
	cases := []struct {
		name  string
		specs []ProcSpec
		want  string
	}{
		{"slot out of range", []ProcSpec{{Name: "x", Shard: 2, Argv: []string{"true"}}}, "slot 2"},
		{"negative slot", []ProcSpec{{Name: "x", Shard: -1, Argv: []string{"true"}}}, "slot -1"},
		{"empty argv", []ProcSpec{{Name: "x", Shard: 0}}, "no command"},
		{"duplicate name", []ProcSpec{ok, ok}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSupervisor(SupervisorOptions{Table: table, Specs: tc.specs})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if _, err := NewSupervisor(SupervisorOptions{Specs: []ProcSpec{ok}}); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := NewSupervisor(SupervisorOptions{Table: table, Specs: []ProcSpec{ok}}); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestSupervisorRegistersReplicas: replica specs land in the routing
// table so a promotion has a target even before Start.
func TestSupervisorRegistersReplicas(t *testing.T) {
	table := NewTable([]string{"http://a"})
	_, err := NewSupervisor(SupervisorOptions{Table: table, Specs: []ProcSpec{
		{Name: "shard0", Shard: 0, Addr: "http://a", Argv: []string{"true"}},
		{Name: "shard0-replica", Shard: 0, Replica: true, Addr: "http://a2", Argv: []string{"true"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if r := table.Replica(0); r != "http://a2" {
		t.Fatalf("replica not registered: %q", r)
	}
}

// TestSupervisorProbeFailover: a supervisor with zero specs is a pure
// prober — it must detect a hung active member via consecutive probe
// failures and promote the registered (external) replica.
func TestSupervisorProbeFailover(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer dead.Close()
	// The replica answers both healthz and the promote call.
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/replica/promote" {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"epochs":{"sssp":7}}`))
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer replica.Close()

	table := NewTable([]string{dead.URL, healthy.URL})
	table.SetReplica(0, replica.URL)
	events := obs.NewRing[TopologyEvent](32)
	sup, err := NewSupervisor(SupervisorOptions{
		Table:         table,
		ProbeInterval: 10 * time.Millisecond,
		ProbeFailures: 2,
		Events:        events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if addr, ok := table.Active(0); ok && addr == replica.URL {
			break
		}
		if time.Now().After(deadline) {
			addr, ok := table.Active(0)
			t.Fatalf("no failover: active=%q healthy=%v", addr, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The healthy slot must be untouched.
	if addr, ok := table.Active(1); !ok || addr != healthy.URL {
		t.Fatalf("healthy slot disturbed: %q %v", addr, ok)
	}
	snap := table.Snapshot()
	if snap[0].Generation != 1 {
		t.Fatalf("slot 0 generation = %d, want 1", snap[0].Generation)
	}
	// The failover left an audit trail: the threshold probe failure on
	// the dead member, then the promotion, all timestamped.
	kinds := map[string]int{}
	for _, ev := range events.Snapshot() {
		kinds[ev.Kind]++
		if ev.UnixNanos == 0 {
			t.Fatalf("event %+v has no timestamp", ev)
		}
	}
	if kinds["probe-fail"] < 1 || kinds["promote"] != 1 {
		t.Fatalf("topology events = %v, want >=1 probe-fail and exactly 1 promote", kinds)
	}
}
