package shard

import (
	"fmt"
	"sync"
)

// Table is the routing truth shared between the router (reads: who
// serves shard i right now, and are they healthy) and the supervisor
// (writes: health transitions and replica promotions). It is the only
// mutable coupling between the two — the router never spawns processes
// and the supervisor never sees a request.
type Table struct {
	mu    sync.RWMutex
	slots []slot
}

type slot struct {
	// primary and replica are base URLs; active is which one requests
	// currently route to.
	primary, replica string
	active           string
	// generation counts promotions, so observers can tell "same address
	// again" from "flapped and came back".
	generation int
	healthy    bool
}

// SlotInfo is the observable state of one routing slot, as reported by
// the router's /shards endpoint.
type SlotInfo struct {
	// Shard is the slot's shard id.
	Shard int `json:"shard"`
	// Active is the base URL requests currently route to.
	Active string `json:"active"`
	// Primary and Replica are the configured member URLs ("" when the
	// slot has no replica).
	Primary string `json:"primary"`
	Replica string `json:"replica,omitempty"`
	// Generation counts promotions on this slot.
	Generation int `json:"generation"`
	// Healthy is the latest probe verdict for the active member.
	Healthy bool `json:"healthy"`
}

// NewTable builds a table routing shard i to primaries[i], with no
// replicas and every slot presumed healthy until a probe says
// otherwise.
func NewTable(primaries []string) *Table {
	t := &Table{slots: make([]slot, len(primaries))}
	for i, addr := range primaries {
		t.slots[i] = slot{primary: addr, active: addr, healthy: true}
	}
	return t
}

// Shards returns the number of slots.
func (t *Table) Shards() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.slots)
}

// Active returns the base URL currently serving shard i and whether the
// last health verdict for it was positive.
func (t *Table) Active(i int) (addr string, healthy bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.slots) {
		return "", false
	}
	return t.slots[i].active, t.slots[i].healthy
}

// SetReplica registers a warm replica address for shard i.
func (t *Table) SetReplica(i int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.slots) {
		t.slots[i].replica = addr
	}
}

// Replica returns shard i's configured replica address ("" if none).
func (t *Table) Replica(i int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.slots) {
		return ""
	}
	return t.slots[i].replica
}

// Generation returns shard i's promotion count. The router watches it
// to forget a slot's failure history (its circuit breaker) when a
// promotion installs a fresh member behind the same slot.
func (t *Table) Generation(i int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.slots) {
		return 0
	}
	return t.slots[i].generation
}

// SetHealth records a probe verdict for shard i's active member.
func (t *Table) SetHealth(i int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i >= 0 && i < len(t.slots) {
		t.slots[i].healthy = ok
	}
}

// Promote flips shard i's active member to its replica, bumps the
// generation, and marks the slot healthy (the caller just confirmed the
// replica responds). The replaced member becomes the slot's replica
// candidate so a later restart can fill the role. It fails when the
// slot has no replica to promote.
func (t *Table) Promote(i int) (addr string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.slots) {
		return "", fmt.Errorf("shard: promote: no slot %d", i)
	}
	s := &t.slots[i]
	if s.replica == "" {
		return "", fmt.Errorf("shard %d: no replica to promote", i)
	}
	old := s.active
	s.active = s.replica
	s.replica = old
	s.generation++
	s.healthy = true
	return s.active, nil
}

// Snapshot returns the observable state of every slot.
func (t *Table) Snapshot() []SlotInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]SlotInfo, len(t.slots))
	for i, s := range t.slots {
		out[i] = SlotInfo{
			Shard:      i,
			Active:     s.active,
			Primary:    s.primary,
			Replica:    s.replica,
			Generation: s.generation,
			Healthy:    s.healthy,
		}
	}
	return out
}
