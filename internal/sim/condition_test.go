package sim

import (
	"math/rand"
	"testing"

	"incgraph/internal/fixpoint"
)

// TestConditionC2 certifies condition (C2) for the Sim instance under the
// order false ≺ true (Theorem 3 preconditions; §5.1's analysis).
func TestConditionC2(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, q := randomInputs(seed, 40, 150)
		inst := NewInstance(g, q)
		if !fixpoint.CheckContracting[bool](inst) {
			t.Fatalf("seed %d: not contracting", seed)
		}
		eng := fixpoint.New[bool](inst, fixpoint.FIFOOrder)
		eng.Run()
		rng := rand.New(rand.NewSource(seed))
		if !fixpoint.CheckMonotonic[bool](inst, eng.State(), rng, 300) {
			t.Fatalf("seed %d: not monotonic", seed)
		}
	}
}
