package sim

import (
	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
)

// DualInstance extends the Sim instance to *dual simulation*: a match must
// satisfy both the child condition (every pattern out-edge simulated by a
// data out-edge) and the parent condition (every pattern in-edge simulated
// by a data in-edge). Dual simulation prunes false matches that plain
// simulation keeps and is the stepping stone to stronger pattern-matching
// semantics.
//
// It demonstrates what "extending the class Φ" (the paper's future work)
// costs in this framework: a new update function and input/dependent sets;
// correctness and relative boundedness then follow from Theorem 3, since
// the instance stays contracting and monotonic under false ≺ true.
type DualInstance struct {
	*Instance
}

// NewDualInstance binds a data graph and a pattern for dual simulation.
func NewDualInstance(g, q *graph.Graph) *DualInstance {
	return &DualInstance{NewInstance(g, q)}
}

// Update evaluates the dual-simulation condition for the pair.
func (s *DualInstance) Update(x fixpoint.Var, get func(fixpoint.Var) bool) bool {
	if !s.Instance.Update(x, get) {
		return false
	}
	v, u := s.pair(x)
	for _, qe := range s.Q.In(u) {
		found := false
		for _, ge := range s.G.In(v) {
			if get(s.PairVar(ge.To, qe.To)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Inputs yields both the child-condition inputs (out×out) and the
// parent-condition inputs (in×in).
func (s *DualInstance) Inputs(x fixpoint.Var, yield func(fixpoint.Var)) {
	s.Instance.Inputs(x, yield)
	v, u := s.pair(x)
	for _, ge := range s.G.In(v) {
		for _, qe := range s.Q.In(u) {
			yield(s.PairVar(ge.To, qe.To))
		}
	}
}

// Dependents is the mirror image: pairs whose child condition reads x
// (in×in) and pairs whose parent condition reads x (out×out).
func (s *DualInstance) Dependents(x fixpoint.Var, yield func(fixpoint.Var)) {
	s.Instance.Dependents(x, yield)
	v, u := s.pair(x)
	for _, ge := range s.G.Out(v) {
		for _, qe := range s.Q.Out(u) {
			yield(s.PairVar(ge.To, qe.To))
		}
	}
}

// DualSim computes the maximum dual simulation with a batch engine run.
func DualSim(g, q *graph.Graph) Relation {
	inst := NewDualInstance(g, q)
	eng := fixpoint.New[bool](inst, fixpoint.FIFOOrder)
	eng.Run()
	return Relation{NQ: q.NumNodes(), Bits: append([]bool(nil), eng.State().Val...)}
}

// IncDual incrementally maintains the maximum dual simulation through the
// generic engine — the whole incremental algorithm is the touched-pair
// bookkeeping below; h and the resumed step function come from the
// framework.
type IncDual struct {
	g, q *graph.Graph
	inst *DualInstance
	eng  *fixpoint.Engine[bool]
	// seen/touched: reusable touched-set arena (fixpoint.VarSet) replacing
	// the per-Apply map[Var]bool.
	seen    fixpoint.VarSet
	touched []fixpoint.Var
}

// NewIncDual computes the initial relation and returns the maintainer.
func NewIncDual(g, q *graph.Graph) *IncDual {
	inst := NewDualInstance(g, q)
	eng := fixpoint.New[bool](inst, fixpoint.FIFOOrder)
	eng.Run()
	return &IncDual{g: g, q: q, inst: inst, eng: eng}
}

// Graph returns the maintained data graph.
func (i *IncDual) Graph() *graph.Graph { return i.g }

// Relation returns the current match relation.
func (i *IncDual) Relation() Relation {
	return Relation{NQ: i.q.NumNodes(), Bits: append([]bool(nil), i.eng.State().Val...)}
}

// Apply computes G ⊕ ΔG and incrementally maintains the relation.
func (i *IncDual) Apply(b graph.Batch) int {
	applied := i.g.Apply(b.Net(i.g.Directed()))
	i.eng.Grow()
	nq := i.q.NumNodes()
	i.seen.Begin(i.inst.NumVars())
	i.touched = i.touched[:0]
	touch := func(v graph.NodeID) {
		for u := 0; u < nq; u++ {
			x := i.inst.PairVar(v, graph.NodeID(u))
			if i.seen.Add(x) {
				i.touched = append(i.touched, x)
			}
		}
	}
	for _, up := range applied {
		// Both endpoints' input sets evolve: the source's child condition
		// and the target's parent condition.
		touch(up.From)
		touch(up.To)
	}
	return len(i.eng.IncrementalRun(i.touched))
}
