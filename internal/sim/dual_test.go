package sim

import (
	"math/rand"
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// naiveDual is the refinement-pass reference for dual simulation.
func naiveDual(g, q *graph.Graph) Relation {
	n, nq := g.NumNodes(), q.NumNodes()
	r := NewRelation(n, nq)
	for v := 0; v < n; v++ {
		for u := 0; u < nq; u++ {
			r.Bits[v*nq+u] = g.Label(graph.NodeID(v)) == q.Label(graph.NodeID(u))
		}
	}
	cond := func(v, u int) bool {
		check := func(qes, ges []graph.Edge) bool {
			for _, qe := range qes {
				found := false
				for _, ge := range ges {
					if r.Bits[int(ge.To)*nq+int(qe.To)] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}
		return check(q.Out(graph.NodeID(u)), g.Out(graph.NodeID(v))) &&
			check(q.In(graph.NodeID(u)), g.In(graph.NodeID(v)))
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for u := 0; u < nq; u++ {
				if r.Bits[v*nq+u] && !cond(v, u) {
					r.Bits[v*nq+u] = false
					changed = true
				}
			}
		}
	}
	return r
}

func TestDualSimMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, q := randomInputs(seed, 40, 150)
		if !DualSim(g, q).Equal(naiveDual(g, q)) {
			t.Fatalf("seed %d: DualSim != naive reference", seed)
		}
	}
}

func TestDualIsSubsetOfSim(t *testing.T) {
	// Dual simulation refines plain simulation: every dual match is a
	// plain match.
	for seed := int64(0); seed < 10; seed++ {
		g, q := randomInputs(seed, 40, 150)
		dual := DualSim(g, q)
		plain := Simfp(g, q)
		for i := range dual.Bits {
			if dual.Bits[i] && !plain.Bits[i] {
				t.Fatalf("seed %d: dual match missing from plain simulation", seed)
			}
		}
	}
}

func TestDualPrunesParentViolations(t *testing.T) {
	// Pattern: A(a) -> B(b). Data node 2(b) has no a-predecessor: plain
	// simulation keeps it, dual simulation prunes it.
	g := graph.New(3, true)
	g.SetLabel(0, 'a')
	g.SetLabel(1, 'b')
	g.SetLabel(2, 'b')
	g.InsertEdge(0, 1, 1)
	q := graph.New(2, true)
	q.SetLabel(0, 'a')
	q.SetLabel(1, 'b')
	q.InsertEdge(0, 1, 1)
	plain := Simfp(g, q)
	dual := DualSim(g, q)
	if !plain.Match(2, 1) {
		t.Fatal("plain simulation should keep node 2")
	}
	if dual.Match(2, 1) || !dual.Match(1, 1) || !dual.Match(0, 0) {
		t.Fatalf("dual relation wrong: %v", dual.Bits)
	}
}

func TestIncDualAgainstBatch(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, q := randomInputs(seed, 50, 200)
		inc := NewIncDual(g, q)
		rng := rand.New(rand.NewSource(seed + 30))
		for round := 0; round < 6; round++ {
			b := gen.RandomUpdates(rng, inc.Graph(), 15, 0.5)
			inc.Apply(b)
			if !inc.Relation().Equal(DualSim(inc.Graph(), q)) {
				t.Fatalf("seed %d round %d: IncDual != batch", seed, round)
			}
		}
	}
}

func TestDualConditionC2(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g, q := randomInputs(seed, 30, 100)
		inst := NewDualInstance(g, q)
		if !fixpoint.CheckContracting[bool](inst) {
			t.Fatalf("seed %d: not contracting", seed)
		}
		eng := fixpoint.New[bool](inst, fixpoint.FIFOOrder)
		eng.Run()
		if !fixpoint.CheckMonotonic[bool](inst, eng.State(), rand.New(rand.NewSource(seed)), 300) {
			t.Fatalf("seed %d: not monotonic", seed)
		}
	}
}
