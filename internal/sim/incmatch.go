package sim

import "incgraph/internal/graph"

// simState is the shared counter machinery of Sim_fp and IncMatch: the
// relation bitmap plus cnt(v, u') = number of v's out-neighbors matching
// u', with the violation cascade that retracts unsupported matches.
type simState struct {
	g, q *graph.Graph
	nq   int
	r    []bool
	cnt  []int32

	// ts, when non-nil, records per pair the time it turned false —
	// tsTrue while true. It is the auxiliary timestamp structure of the
	// weakly deducible IncSim; IncMatch and Sim_fp leave it nil.
	ts    []int64
	clock int64

	// onFalse, when non-nil, observes every cascade retraction of pair
	// (v, u). IncSim installs it to charge retractions to its work
	// ledger; Sim_fp and IncMatch leave it nil (no accounting cost).
	onFalse func(v, u int32)
}

// tsTrue is the timestamp of pairs that are currently true (x[v,u].t = ∞
// in the paper's notation).
const tsTrue = int64(1) << 62

func newSimState(g, q *graph.Graph, withTS bool) *simState {
	s := &simState{g: g, q: q, nq: q.NumNodes()}
	n := g.NumNodes()
	s.r = make([]bool, n*s.nq)
	s.cnt = make([]int32, n*s.nq)
	for v := 0; v < n; v++ {
		for u := 0; u < s.nq; u++ {
			s.r[v*s.nq+u] = g.Label(graph.NodeID(v)) == q.Label(graph.NodeID(u))
		}
	}
	if withTS {
		s.ts = make([]int64, n*s.nq)
		for i, b := range s.r {
			if b {
				s.ts[i] = tsTrue
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, ge := range g.Out(graph.NodeID(v)) {
			for u := 0; u < s.nq; u++ {
				if s.r[int(ge.To)*s.nq+u] {
					s.cnt[v*s.nq+u]++
				}
			}
		}
	}
	var p [][2]int32
	for v := 0; v < n; v++ {
		for u := 0; u < s.nq; u++ {
			if s.cnt[v*s.nq+u] == 0 {
				p = append(p, [2]int32{int32(v), int32(u)})
			}
		}
	}
	s.cascade(p)
	return s
}

// grow extends the pair tables after vertex insertions.
func (s *simState) grow() {
	n := s.g.NumNodes()
	for len(s.r) < n*s.nq {
		v := len(s.r) / s.nq
		u := len(s.r) % s.nq
		match := s.g.Label(graph.NodeID(v)) == s.q.Label(graph.NodeID(u))
		s.r = append(s.r, match)
		s.cnt = append(s.cnt, 0)
		if s.ts != nil {
			if match {
				s.ts = append(s.ts, tsTrue)
			} else {
				s.ts = append(s.ts, 0)
			}
		}
	}
}

// cascade retracts matches transitively from the exhausted (v, u') pairs,
// stamping turn-off times when timestamps are enabled.
func (s *simState) cascade(p [][2]int32) {
	for len(p) > 0 {
		pair := p[len(p)-1]
		p = p[:len(p)-1]
		v, uPrime := pair[0], pair[1]
		for _, qe := range s.q.In(graph.NodeID(uPrime)) {
			u := int32(qe.To)
			if !s.r[int(v)*s.nq+int(u)] {
				continue
			}
			s.r[int(v)*s.nq+int(u)] = false
			if s.ts != nil {
				s.clock++
				s.ts[int(v)*s.nq+int(u)] = s.clock
			}
			if s.onFalse != nil {
				s.onFalse(v, u)
			}
			for _, ge := range s.g.In(graph.NodeID(v)) {
				i := int(ge.To)*s.nq + int(u)
				s.cnt[i]--
				if s.cnt[i] == 0 {
					p = append(p, [2]int32{int32(ge.To), u})
				}
			}
		}
	}
}

// relation copies the current bitmap.
func (s *simState) relation() Relation {
	return Relation{NQ: s.nq, Bits: append([]bool(nil), s.r...)}
}

// IncMatch is the fine-tuned incremental simulation competitor in the
// style of Fan, Wang and Wu (TODS 2013): deletions cascade through the
// counters exactly; insertions re-run the batch refinement on an affected
// ball around the inserted edges. For DAG patterns a ball of depth |V_Q|
// is exact, since a pair's match status depends only on out-paths no
// longer than the pattern's height; cyclic patterns can propagate new
// matches arbitrarily far, so IncMatch falls back to the full backward
// closure — the weakness that IncSim's timestamps avoid (§5.1).
type IncMatch struct {
	*simState
	acyclic bool
	pending graph.Batch
}

// NewIncMatch computes the initial maximum simulation.
func NewIncMatch(g, q *graph.Graph) *IncMatch {
	return &IncMatch{simState: newSimState(g, q, false), acyclic: isDAG(q)}
}

// isDAG reports whether the pattern has no directed cycle.
func isDAG(q *graph.Graph) bool {
	n := q.NumNodes()
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	var visit func(graph.NodeID) bool
	visit = func(v graph.NodeID) bool {
		state[v] = 1
		for _, e := range q.Out(v) {
			switch state[e.To] {
			case 1:
				return false
			case 0:
				if !visit(e.To) {
					return false
				}
			}
		}
		state[v] = 2
		return true
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 && !visit(graph.NodeID(v)) {
			return false
		}
	}
	return true
}

// Graph returns the maintained data graph.
func (m *IncMatch) Graph() *graph.Graph { return m.g }

// Relation returns the current match relation.
func (m *IncMatch) Relation() Relation { return m.relation() }

// Apply computes G ⊕ ΔG and repairs the relation: counter cascades for
// deletions, affected-ball recomputation for insertions.
func (m *IncMatch) Apply(b graph.Batch) int {
	m.Stage(b)
	return m.Repair()
}

// Stage materializes G ⊕ ΔG; see the incremental maintainers' Stage.
func (m *IncMatch) Stage(b graph.Batch) {
	m.pending = append(m.pending, m.g.Apply(b.Net(m.g.Directed()))...)
	m.grow()
}

// Repair processes the staged updates.
func (m *IncMatch) Repair() int {
	applied := m.pending
	m.pending = nil
	var offSeeds [][2]int32
	var inserted []graph.NodeID
	adjust := func(from, to graph.NodeID, delta int32) {
		for u := 0; u < m.nq; u++ {
			if m.r[int(to)*m.nq+u] {
				i := int(from)*m.nq + u
				m.cnt[i] += delta
				if delta < 0 && m.cnt[i] == 0 {
					offSeeds = append(offSeeds, [2]int32{int32(from), int32(u)})
				}
			}
		}
	}
	for _, up := range applied {
		switch up.Kind {
		case graph.DeleteEdge:
			adjust(up.From, up.To, -1)
			if !m.g.Directed() {
				adjust(up.To, up.From, -1)
			}
		case graph.InsertEdge:
			adjust(up.From, up.To, 1)
			inserted = append(inserted, up.From)
			if !m.g.Directed() {
				adjust(up.To, up.From, 1)
				inserted = append(inserted, up.To)
			}
		}
	}
	m.cascade(offSeeds)
	affected := 0
	if len(inserted) > 0 {
		affected = m.insertRepair(inserted)
	}
	return affected
}

// insertRepair raises candidate pairs in a backward ball around the
// insertion sites to the label-match over-approximation and re-refines.
// The ball has depth |V_Q| for DAG patterns (exact: a pair's status
// depends on out-paths no longer than the pattern height) and is the full
// backward closure otherwise.
func (m *IncMatch) insertRepair(sites []graph.NodeID) int {
	depth := m.q.NumNodes()
	if !m.acyclic {
		depth = m.g.NumNodes()
	}
	dist := make(map[graph.NodeID]int, len(sites)*4)
	queue := make([]graph.NodeID, 0, len(sites))
	for _, s := range sites {
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		d := dist[v]
		if d >= depth {
			continue
		}
		for _, e := range m.g.In(v) {
			if _, ok := dist[e.To]; !ok {
				dist[e.To] = d + 1
				queue = append(queue, e.To)
			}
		}
	}
	// Raise in-ball candidate pairs to the label over-approximation.
	var raised [][2]int32
	for v := range dist {
		for u := 0; u < m.nq; u++ {
			i := int(v)*m.nq + u
			if !m.r[i] && m.g.Label(v) == m.q.Label(graph.NodeID(u)) {
				m.r[i] = true
				raised = append(raised, [2]int32{int32(v), int32(u)})
			}
		}
	}
	// Account the raises in the counters of in-neighbors.
	for _, p := range raised {
		for _, ge := range m.g.In(graph.NodeID(p[0])) {
			m.cnt[int(ge.To)*m.nq+int(p[1])]++
		}
	}
	// Refine: every raised pair with an exhausted out-requirement seeds
	// the cascade.
	var seeds [][2]int32
	for _, p := range raised {
		for _, qe := range m.q.Out(graph.NodeID(p[1])) {
			if m.cnt[int(p[0])*m.nq+int(qe.To)] == 0 {
				seeds = append(seeds, [2]int32{p[0], int32(qe.To)})
			}
		}
	}
	m.cascade(seeds)
	return len(raised)
}
