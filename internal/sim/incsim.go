package sim

import (
	"fmt"
	"time"

	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// Inc is the weakly deducible incremental algorithm IncSim of §5.1, built
// on the same counters and logic as Sim_fp plus one auxiliary structure:
// a timestamp x[v,u].t per pair recording when it turned false. The
// timestamps supply the anchor order <_C, letting the initial scope
// function h of Fig. 4 repair insertions correctly even on cyclic
// patterns, where pure from-below propagation fails (Example 6).
//
// The generic-engine equivalent is IncEngine; both compute the same
// relation (tests cross-check them), but Inc propagates through counters
// the way Sim_fp does and is the implementation the benchmarks exercise.
//
// An Inc is not goroutine-safe: it (and the graph it owns) must be
// driven by a single writer goroutine making every call, reads included.
// Concurrent serving goes through internal/serve, which gives each
// maintainer one apply loop and publishes immutable snapshots to readers.
type Inc struct {
	*simState
	hq      *pq.Heap
	inH0    []int64
	affMark []int64 // epoch marks: AFF membership (work ledger)
	chMark  []int64 // epoch marks: written this repair (work ledger)
	chOld   []bool  // repair-start match bits of written pairs (work ledger)
	chList  []int32 // written pairs, swept at end of Repair
	// Repair-scope arena, reused across Repairs (the counter-cascade
	// analogue of fixpoint.ScopeArena): vmark/vpos dedupe touched data
	// nodes by epoch, touched/infeasible/h0buf/seedBuf accumulate the
	// per-Repair scope without allocating at steady state.
	vmark      []int64
	vpos       []int32
	touched    []int32
	infeasible []bool
	h0buf      []int32
	seedBuf    [][2]int32
	epoch      int64
	stats      fixpoint.Stats
	tracer     fixpoint.Tracer
	pending    graph.Batch
}

// NewInc computes the initial maximum simulation with timestamp recording
// and returns the algorithm.
func NewInc(g, q *graph.Graph) *Inc {
	s := newSimState(g, q, true)
	i := &Inc{simState: s, inH0: make([]int64, len(s.r)),
		affMark: make([]int64, len(s.r)), chMark: make([]int64, len(s.r)),
		chOld: make([]bool, len(s.r)), chList: make([]int32, 0, len(s.r))}
	i.hq = pq.New(len(s.r), func(a, b int32) bool { return i.ts[a] < i.ts[b] })
	// Record cascade retractions in the ledger (a retracted pair was true
	// before the write); installed after the initial batch cascade above,
	// so only incremental repairs count.
	s.onFalse = func(v, u int32) { i.ledgerWrite(int(v)*i.nq+int(u), true) }
	return i
}

// ledgerAff records pair x's first entry into this repair's affected
// area: |AFF| grows by one and ‖AFF‖ by the pair's dependency degree —
// the dependent pairs over in-neighbors of its data node and pattern
// node, |In(v)|·|In(u)|.
func (i *Inc) ledgerAff(x int) {
	if i.affMark[x] == i.epoch {
		return
	}
	i.affMark[x] = i.epoch
	i.stats.Ledger.Aff++
	v := graph.NodeID(x / i.nq)
	u := graph.NodeID(x % i.nq)
	i.stats.Ledger.AffEdges += int64(len(i.g.In(v))) * int64(len(i.q.In(u)))
}

// ledgerWrite records a write of pair x's match bit, capturing the
// pre-write value on the first write of this repair. The settle sweep at
// the end of Repair counts CHANGED as {x : r_final ≠ r_start}, so a pair
// raised by h and retracted back by the resumed cascade — a transient —
// is not charged.
func (i *Inc) ledgerWrite(x int, old bool) {
	if i.chMark[x] == i.epoch {
		return
	}
	i.chMark[x] = i.epoch
	i.chOld[x] = old
	i.chList = append(i.chList, int32(x))
}

// ledgerSettle sweeps the repair's written pairs into CHANGED (and AFF)
// where the final match bit differs from the repair-start one.
func (i *Inc) ledgerSettle() {
	for _, x := range i.chList {
		if i.r[x] != i.chOld[x] {
			i.stats.Ledger.Changed++
			i.ledgerAff(int(x))
		}
	}
	i.chList = i.chList[:0]
}

// Graph returns the maintained data graph.
func (i *Inc) Graph() *graph.Graph { return i.g }

// Relation returns the current match relation.
func (i *Inc) Relation() Relation { return i.relation() }

// Stats exposes inspection counters and the h/resume time split.
func (i *Inc) Stats() fixpoint.Stats { return i.stats }

// Pattern returns the maintained pattern graph.
func (i *Inc) Pattern() *graph.Graph { return i.q }

// ExportState copies out the state a durability checkpoint persists: the
// match relation, the per-pair support counters, the falsification
// timestamps (IncSim's auxiliary structure, supplying the order <_C),
// and the logical clock.
func (i *Inc) ExportState() (r []bool, cnt []int32, ts []int64, clock int64) {
	return append([]bool(nil), i.r...), append([]int32(nil), i.cnt...),
		append([]int64(nil), i.ts...), i.clock
}

// RestoreState installs state exported from a checkpoint of the same
// data and pattern graphs.
func (i *Inc) RestoreState(r []bool, cnt []int32, ts []int64, clock int64) error {
	want := i.g.NumNodes() * i.nq
	if len(r) != want || len(cnt) != want || len(ts) != want {
		return fmt.Errorf("sim: restore of %d/%d/%d pairs into relation with %d", len(r), len(cnt), len(ts), want)
	}
	copy(i.r, r)
	copy(i.cnt, cnt)
	copy(i.ts, ts)
	i.clock = clock
	return nil
}

// SetTracer installs the span hook observing Repair's h and resume
// phases (see fixpoint.Tracer). Inc is not engine-based, so it drives
// the tracer itself: the touched size is the number of (node, pattern)
// pairs whose input sets evolved, and rounds are not reported — the
// resumed counter cascade is stack-driven, not level-structured. Call
// from the single writer goroutine.
func (i *Inc) SetTracer(t fixpoint.Tracer) { i.tracer = t }

// Apply computes G ⊕ ΔG and incrementally maintains the relation: it
// adjusts the counters for the structural changes, runs the initial scope
// function h over the touched pairs in the order <_C, and resumes the
// counter cascade of Sim_fp on the produced scope H⁰. It returns |H⁰|.
func (i *Inc) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG without repairing the relation, letting
// benchmarks time Repair separately from the graph mutation every method
// needs.
func (i *Inc) Stage(b graph.Batch) {
	i.pending = append(i.pending, i.g.Apply(b.Net(i.g.Directed()))...)
	i.grow()
	for len(i.inH0) < len(i.r) {
		i.inH0 = append(i.inH0, 0)
	}
	for len(i.affMark) < len(i.r) {
		i.affMark = append(i.affMark, 0)
		i.chMark = append(i.chMark, 0)
		i.chOld = append(i.chOld, false)
	}
	if cap(i.chList) < len(i.r) {
		cl := make([]int32, len(i.chList), len(i.r))
		copy(cl, i.chList)
		i.chList = cl
	}
	for len(i.vmark) < i.g.NumNodes() {
		i.vmark = append(i.vmark, 0)
		i.vpos = append(i.vpos, 0)
	}
	i.hq.Grow(len(i.r))
}

// Repair runs the incremental algorithm over the staged updates.
func (i *Inc) Repair() int {
	applied := i.pending
	i.pending = nil
	touched := i.touched[:0]
	infeasible := i.infeasible[:0]
	i.epoch++
	i.chList = i.chList[:0]
	// Insertions can raise pairs (more support, the infeasible direction
	// for Sim, where false ≺ true); deletions only retract and are left
	// to the resumed cascade.
	touch := func(v graph.NodeID, mayRaise bool) {
		if i.vmark[v] == i.epoch {
			if mayRaise {
				p := int(i.vpos[v])
				for u := 0; u < i.nq; u++ {
					infeasible[p+u] = true
				}
			}
			return
		}
		i.vmark[v] = i.epoch
		i.vpos[v] = int32(len(touched))
		for u := 0; u < i.nq; u++ {
			x := int32(int(v)*i.nq + u)
			i.inH0[x] = i.epoch
			i.ledgerAff(int(x))
			touched = append(touched, x)
			infeasible = append(infeasible, mayRaise)
		}
	}
	adjust := func(from, to graph.NodeID, delta int32) {
		for u := 0; u < i.nq; u++ {
			if i.r[int(to)*i.nq+u] {
				i.cnt[int(from)*i.nq+u] += delta
			}
		}
	}
	for _, up := range applied {
		delta := int32(1)
		if up.Kind == graph.DeleteEdge {
			delta = -1
		}
		adjust(up.From, up.To, delta)
		if !i.g.Directed() {
			adjust(up.To, up.From, delta)
		}
		// The input sets of the changed edge's source pairs evolved; for
		// undirected data graphs the other endpoint's pairs too.
		mayRaise := up.Kind == graph.InsertEdge
		touch(up.From, mayRaise)
		if !i.g.Directed() {
			touch(up.To, mayRaise)
		}
	}
	i.touched, i.infeasible = touched, infeasible
	if len(touched) == 0 {
		return 0
	}
	st0 := i.stats
	i.stats.Ledger.Runs++
	i.stats.Ledger.Touched += int64(len(touched))
	i.stats.Ledger.RecomputeEst = int64(len(i.r))
	if i.tracer != nil {
		i.tracer.BeginRun(len(touched), 0)
	}
	start := time.Now()
	h0 := i.scopeFunction(touched, infeasible)
	mid := time.Now()
	if i.tracer != nil {
		i.tracer.ScopeDone(i.stats.HPops-st0.HPops, i.stats.HResets-st0.HResets, int64(len(h0)))
	}
	i.resume(h0)
	i.ledgerSettle()
	i.stats.ScopeSize = int64(len(h0))
	i.stats.HSeconds += mid.Sub(start).Seconds()
	i.stats.ResumeSeconds += time.Since(mid).Seconds()
	if i.tracer != nil {
		// The counter cascade does not count pops or changes; EndRun
		// carries only the resume span's timing.
		i.tracer.EndRun(0, 0)
	}
	return len(h0)
}

// scopeFunction is h (Fig. 4) specialized to Sim: pairs are revised in
// ascending turn-off time; a popped false pair whose simulation condition
// holds on its feasible input set — later-determined inputs replaced by
// their label-match bottoms — is potentially infeasible and is raised back
// to true, propagating to the dependent pairs it may anchor.
func (i *Inc) scopeFunction(touched []int32, infeasible []bool) []int32 {
	h0 := append(i.h0buf[:0], touched...)
	defer func() { i.h0buf = h0[:0] }()
	for j, x := range touched {
		if infeasible[j] && !i.r[x] {
			i.hq.AddOrAdjust(x)
		}
	}
	for {
		x, ok := i.hq.Pop()
		if !ok {
			break
		}
		i.stats.HPops++
		if i.r[x] {
			continue // true pairs are at the bottom already: feasible
		}
		v := graph.NodeID(int(x) / i.nq)
		u := graph.NodeID(int(x) % i.nq)
		if i.g.Label(v) != i.q.Label(u) {
			continue
		}
		tsx := i.ts[x]
		if !i.feasibleCond(v, u, tsx) {
			continue
		}
		// Potentially infeasible: raise the pair back to true.
		i.ledgerWrite(int(x), false)
		i.r[x] = true
		i.ts[x] = tsTrue
		i.stats.HResets++
		if i.inH0[x] != i.epoch {
			i.inH0[x] = i.epoch
			i.ledgerAff(int(x))
			h0 = append(h0, x)
		}
		for _, ge := range i.g.In(v) {
			i.cnt[int(ge.To)*i.nq+int(u)]++
		}
		// Enqueue dependents that x may anchor: pairs over in-neighbors
		// with larger turn-off times.
		for _, ge := range i.g.In(v) {
			for _, qe := range i.q.In(u) {
				z := int32(int(ge.To)*i.nq + int(qe.To))
				if !i.r[z] && i.ts[z] > tsx {
					i.hq.AddOrAdjust(z)
				}
			}
		}
	}
	return h0
}

// feasibleCond evaluates the simulation condition for (v, u) on the
// feasible input set Ȳ: inputs determined after tsx are replaced by their
// label-match bottoms.
func (i *Inc) feasibleCond(v, u graph.NodeID, tsx int64) bool {
	for _, qe := range i.q.Out(u) {
		found := false
		for _, ge := range i.g.Out(v) {
			p := int(ge.To)*i.nq + int(qe.To)
			i.stats.Reads++
			if i.ts[p] > tsx {
				// Determined after (v, u): use the bottom value.
				if i.g.Label(ge.To) == i.q.Label(qe.To) {
					found = true
					break
				}
				continue
			}
			if i.r[p] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// resume is the step function of Sim_fp run from the scope H⁰: every
// scope pair with an exhausted requirement counter seeds the usual
// violation cascade.
func (i *Inc) resume(h0 []int32) {
	seeds := i.seedBuf[:0]
	defer func() { i.seedBuf = seeds[:0] }()
	for _, x := range h0 {
		v := int32(int(x) / i.nq)
		u := graph.NodeID(int(x) % i.nq)
		if !i.r[x] {
			continue
		}
		for _, qe := range i.q.Out(u) {
			if i.cnt[int(v)*i.nq+int(qe.To)] == 0 {
				seeds = append(seeds, [2]int32{v, int32(qe.To)})
			}
		}
	}
	i.cascade(seeds)
}
