package sim

import (
	"math/rand"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// Scenarios targeting the tuned IncSim's timestamp and counter logic.

func TestTunedDeletionSkipsScopeQueue(t *testing.T) {
	// Pure deletions never raise pairs, so h's queue must stay empty and
	// the whole repair runs through the counter cascade.
	g, q := randomInputs(3, 50, 200)
	inc := NewInc(g, q)
	before := inc.Stats().HPops
	inc.Apply(gen.RandomUpdates(rand.New(rand.NewSource(4)), g, 20, 0.0))
	if inc.Stats().HPops != before {
		t.Fatalf("deletions popped %d scope entries", inc.Stats().HPops-before)
	}
	if !inc.Relation().Equal(Simfp(inc.Graph(), q)) {
		t.Fatal("relation wrong after deletions")
	}
}

func TestTunedPatternSinkAlwaysMatches(t *testing.T) {
	// A pattern node with no out-edges matches every label-equal data
	// node regardless of updates.
	g := graph.New(3, true)
	g.SetLabel(0, 'a')
	g.SetLabel(1, 'a')
	g.SetLabel(2, 'b')
	g.InsertEdge(0, 1, 1)
	q := graph.New(1, true)
	q.SetLabel(0, 'a')
	inc := NewInc(g, q)
	if !inc.Relation().Match(0, 0) || !inc.Relation().Match(1, 0) || inc.Relation().Match(2, 0) {
		t.Fatal("initial sink matches wrong")
	}
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 0, To: 1}})
	if !inc.Relation().Match(0, 0) || !inc.Relation().Match(1, 0) {
		t.Fatal("sink matches lost after deletion")
	}
}

func TestTunedCountersStayConsistent(t *testing.T) {
	// After many rounds, rebuild counters from scratch and compare — the
	// incremental bookkeeping must not drift.
	g, q := randomInputs(5, 40, 160)
	inc := NewInc(g, q)
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 15; round++ {
		inc.Apply(gen.RandomUpdates(rng, inc.Graph(), 15, 0.5))
	}
	nq := q.NumNodes()
	n := inc.Graph().NumNodes()
	want := make([]int32, n*nq)
	for v := 0; v < n; v++ {
		for _, ge := range inc.Graph().Out(graph.NodeID(v)) {
			for u := 0; u < nq; u++ {
				if inc.r[int(ge.To)*nq+u] {
					want[v*nq+u]++
				}
			}
		}
	}
	for i := range want {
		if inc.cnt[i] != want[i] {
			t.Fatalf("counter %d drifted: have %d want %d", i, inc.cnt[i], want[i])
		}
	}
}

func TestTunedTimestampsPartitionTrueFalse(t *testing.T) {
	// Invariant: ts == tsTrue iff the pair is currently true.
	g, q := randomInputs(7, 40, 160)
	inc := NewInc(g, q)
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 10; round++ {
		inc.Apply(gen.RandomUpdates(rng, inc.Graph(), 15, 0.5))
		for i, b := range inc.r {
			if b != (inc.ts[i] == tsTrue) {
				t.Fatalf("round %d: ts/truth mismatch at pair %d", round, i)
			}
		}
	}
}

func TestTunedInsertionHeavyStream(t *testing.T) {
	// Growth-only workload: matches only ever appear; every round must
	// land on the batch answer.
	g, q := randomInputs(9, 60, 60) // sparse start
	inc := NewInc(g, q)
	rng := rand.New(rand.NewSource(10))
	for round := 0; round < 12; round++ {
		inc.Apply(gen.RandomUpdates(rng, inc.Graph(), 25, 1.0))
		if !inc.Relation().Equal(Simfp(inc.Graph(), q)) {
			t.Fatalf("round %d: relation wrong", round)
		}
	}
}

func TestTunedVertexInsertion(t *testing.T) {
	g, q := randomInputs(11, 30, 90)
	inc := NewInc(g, q)
	v := g.AddNode(q.Label(0))
	inc.Apply(graph.Batch{
		{Kind: graph.InsertEdge, From: v, To: 0, W: 1},
		{Kind: graph.InsertEdge, From: 1, To: v, W: 1},
	})
	if !inc.Relation().Equal(Simfp(inc.Graph(), q)) {
		t.Fatal("relation wrong after vertex insertion")
	}
}
