// Package sim implements graph pattern matching via graph simulation
// (§5.1 of the paper): the counter-based batch fixpoint algorithm Sim_fp
// (Henzinger–Henzinger–Kopke style), the weakly deducible incremental
// algorithm IncSim whose timestamps resolve cyclic patterns, the
// unit-update variant, and the IncMatch competitor (Fan–Wang–Wu style).
//
// A simulation relation R ⊆ V × V_Q requires label equality and, for every
// pattern edge (u, u'), a data edge (v, v') with ⟨v', u'⟩ ∈ R. Q(G) is the
// unique maximum such relation, represented here as a Relation bitmap.
package sim

import (
	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
)

// Relation is a match relation over V × V_Q, stored as a dense bitmap.
type Relation struct {
	NQ   int
	Bits []bool
}

// NewRelation allocates an all-false relation for n data nodes and nq
// pattern nodes.
func NewRelation(n, nq int) Relation {
	return Relation{NQ: nq, Bits: make([]bool, n*nq)}
}

// Match reports whether data node v matches pattern node u.
func (r Relation) Match(v graph.NodeID, u graph.NodeID) bool {
	return r.Bits[int(v)*r.NQ+int(u)]
}

// Count returns the number of matching pairs.
func (r Relation) Count() int {
	c := 0
	for _, b := range r.Bits {
		if b {
			c++
		}
	}
	return c
}

// Equal reports whether two relations are identical.
func (r Relation) Equal(o Relation) bool {
	if r.NQ != o.NQ || len(r.Bits) != len(o.Bits) {
		return false
	}
	for i := range r.Bits {
		if r.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// Naive computes the maximum simulation by global refinement passes, the
// O(rounds·|V||V_Q|·deg) reference used by tests.
func Naive(g, q *graph.Graph) Relation {
	n, nq := g.NumNodes(), q.NumNodes()
	r := NewRelation(n, nq)
	for v := 0; v < n; v++ {
		for u := 0; u < nq; u++ {
			r.Bits[v*nq+u] = g.Label(graph.NodeID(v)) == q.Label(graph.NodeID(u))
		}
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for u := 0; u < nq; u++ {
				if !r.Bits[v*nq+u] {
					continue
				}
				ok := true
				for _, qe := range q.Out(graph.NodeID(u)) {
					found := false
					for _, ge := range g.Out(graph.NodeID(v)) {
						if r.Bits[int(ge.To)*nq+int(qe.To)] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					r.Bits[v*nq+u] = false
					changed = true
				}
			}
		}
	}
	return r
}

// Simfp is the paper's batch fixpoint algorithm for Sim: it maintains
// counters cnt(v, u') of v's out-neighbors matching u', seeds a worklist
// with exhausted counters, and cascades violations. It returns the maximum
// simulation.
func Simfp(g, q *graph.Graph) Relation {
	n, nq := g.NumNodes(), q.NumNodes()
	r := NewRelation(n, nq)
	cnt := make([]int32, n*nq)
	for v := 0; v < n; v++ {
		for u := 0; u < nq; u++ {
			r.Bits[v*nq+u] = g.Label(graph.NodeID(v)) == q.Label(graph.NodeID(u))
		}
	}
	for v := 0; v < n; v++ {
		for _, ge := range g.Out(graph.NodeID(v)) {
			for u := 0; u < nq; u++ {
				if r.Bits[int(ge.To)*nq+u] {
					cnt[v*nq+u]++
				}
			}
		}
	}
	// Worklist of pairs (v, u') whose counter is exhausted.
	var p [][2]int32
	for v := 0; v < n; v++ {
		for u := 0; u < nq; u++ {
			if cnt[v*nq+u] == 0 {
				p = append(p, [2]int32{int32(v), int32(u)})
			}
		}
	}
	turnOff := func(v, u int32) [][2]int32 {
		var out [][2]int32
		r.Bits[int(v)*nq+int(u)] = false
		for _, ge := range g.In(graph.NodeID(v)) {
			i := int(ge.To)*nq + int(u)
			cnt[i]--
			if cnt[i] == 0 {
				out = append(out, [2]int32{int32(ge.To), u})
			}
		}
		return out
	}
	for len(p) > 0 {
		pair := p[len(p)-1]
		p = p[:len(p)-1]
		v, uPrime := pair[0], pair[1]
		for _, qe := range q.In(graph.NodeID(uPrime)) {
			u := int32(qe.To)
			if r.Bits[int(v)*nq+int(u)] {
				p = append(p, turnOff(v, u)...)
			}
		}
	}
	return r
}

// Instance is the Sim instantiation of the fixpoint model: one Boolean
// variable per pair ⟨v, u⟩, f_x true iff labels match and every pattern
// edge out of u is simulated by some data edge out of v. With false ≺
// true it is contracting and monotonic, so Theorem 3 applies; the engine's
// timestamps are exactly the x[v,u].t of §5.1.
type Instance struct {
	G, Q *graph.Graph
	nq   int
}

// NewInstance binds a data graph and a pattern.
func NewInstance(g, q *graph.Graph) *Instance {
	return &Instance{G: g, Q: q, nq: q.NumNodes()}
}

// PairVar returns the variable id of pair ⟨v, u⟩.
func (s *Instance) PairVar(v, u graph.NodeID) fixpoint.Var {
	return fixpoint.Var(int(v)*s.nq + int(u))
}

func (s *Instance) pair(x fixpoint.Var) (graph.NodeID, graph.NodeID) {
	return graph.NodeID(int(x) / s.nq), graph.NodeID(int(x) % s.nq)
}

// NumVars returns |V| × |V_Q|.
func (s *Instance) NumVars() int { return s.G.NumNodes() * s.nq }

// Bottom is true iff the labels match: the initial over-approximation.
func (s *Instance) Bottom(x fixpoint.Var) bool {
	v, u := s.pair(x)
	return s.G.Label(v) == s.Q.Label(u)
}

// Less orders false ≺ true: matches are only ever retracted.
func (s *Instance) Less(a, b bool) bool { return !a && b }

// Equal reports Boolean equality.
func (s *Instance) Equal(a, b bool) bool { return a == b }

// Inputs yields the pairs ⟨v', u'⟩ over v's and u's out-neighbors.
func (s *Instance) Inputs(x fixpoint.Var, yield func(fixpoint.Var)) {
	v, u := s.pair(x)
	for _, ge := range s.G.Out(v) {
		for _, qe := range s.Q.Out(u) {
			yield(s.PairVar(ge.To, qe.To))
		}
	}
}

// Dependents yields the pairs over in-neighbors.
func (s *Instance) Dependents(x fixpoint.Var, yield func(fixpoint.Var)) {
	v, u := s.pair(x)
	for _, ge := range s.G.In(v) {
		for _, qe := range s.Q.In(u) {
			yield(s.PairVar(ge.To, qe.To))
		}
	}
}

// Update evaluates the simulation condition for the pair.
func (s *Instance) Update(x fixpoint.Var, get func(fixpoint.Var) bool) bool {
	v, u := s.pair(x)
	if s.G.Label(v) != s.Q.Label(u) {
		return false
	}
	for _, qe := range s.Q.Out(u) {
		found := false
		for _, ge := range s.G.Out(v) {
			if get(s.PairVar(ge.To, qe.To)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Seeds yields the label-matching pairs; all others start false and stay
// false.
func (s *Instance) Seeds(yield func(fixpoint.Var)) {
	for x := 0; x < s.NumVars(); x++ {
		if s.Bottom(fixpoint.Var(x)) {
			yield(fixpoint.Var(x))
		}
	}
}

// IncEngine is the weakly deducible incremental algorithm IncSim
// expressed directly through the generic fixpoint engine. Its engine
// timestamps record when each pair turned false, providing the anchor
// order <_C that makes insertions on cyclic patterns repairable (Example
// 6). The counter-based Inc in incsim.go is the tuned equivalent used by
// the benchmarks; both compute the same relation.
type IncEngine struct {
	g, q *graph.Graph
	inst *Instance
	eng  *fixpoint.Engine[bool]
	// seen/touched are the reusable touched-set arena: one epoch-marked
	// dense set instead of a per-Apply map[Var]bool (see fixpoint.VarSet).
	seen    fixpoint.VarSet
	touched []fixpoint.Var
}

// NewIncEngine computes the initial maximum simulation and returns the
// algorithm.
func NewIncEngine(g, q *graph.Graph) *IncEngine {
	inst := NewInstance(g, q)
	eng := fixpoint.New[bool](inst, fixpoint.FIFOOrder)
	eng.Run()
	return &IncEngine{g: g, q: q, inst: inst, eng: eng}
}

// Graph returns the maintained data graph.
func (i *IncEngine) Graph() *graph.Graph { return i.g }

// Relation returns the current match relation (copying the bitmap).
func (i *IncEngine) Relation() Relation {
	return Relation{NQ: i.inst.nq, Bits: append([]bool(nil), i.eng.State().Val...)}
}

// Stats exposes the engine's inspection counters.
func (i *IncEngine) Stats() fixpoint.Stats { return i.eng.State().Stats }

// SetWorkers configures the engine's parallel execution mode (n >= 2
// partitions repair rounds across n workers; <= 1 restores the
// sequential drain). Single-writer: call it from the goroutine driving
// Apply.
func (i *IncEngine) SetWorkers(n int) { i.eng.SetWorkers(n) }

// Workers returns the configured worker count (1 when sequential).
func (i *IncEngine) Workers() int { return i.eng.Workers() }

// ParStats returns the engine's cumulative parallel-drain counters.
func (i *IncEngine) ParStats() fixpoint.ParStats { return i.eng.ParStats() }

// Close releases the engine's worker pool, if any. The maintainer stays
// usable; a later parallel Apply respawns the pool.
func (i *IncEngine) Close() { i.eng.Close() }

// Apply computes G ⊕ ΔG and incrementally maintains the relation. It
// returns |H⁰|.
func (i *IncEngine) Apply(b graph.Batch) int {
	applied := i.g.Apply(b.Net(i.g.Directed()))
	i.eng.Grow()
	i.seen.Begin(i.inst.NumVars())
	i.touched = i.touched[:0]
	touch := func(v graph.NodeID) {
		for u := 0; u < i.inst.nq; u++ {
			x := i.inst.PairVar(v, graph.NodeID(u))
			if i.seen.Add(x) {
				i.touched = append(i.touched, x)
			}
		}
	}
	for _, up := range applied {
		// The input sets of all pairs on the edge's source evolved; for
		// undirected data graphs the target's pairs evolve too.
		touch(up.From)
		if !i.g.Directed() {
			touch(up.To)
		}
	}
	return len(i.eng.IncrementalRun(i.touched))
}

// IncUnit is IncSim_n: the same machinery driven one unit update at a
// time.
type IncUnit struct{ *Inc }

// NewIncUnit builds the unit-update variant.
func NewIncUnit(g, q *graph.Graph) *IncUnit { return &IncUnit{NewInc(g, q)} }

// Apply processes each unit update as its own batch.
func (i *IncUnit) Apply(b graph.Batch) int {
	total := 0
	for _, u := range b {
		total += i.Inc.Apply(graph.Batch{u})
	}
	return total
}
