package sim

import (
	"math/rand"
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func randomInputs(seed int64, n, m int) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	g := gen.ErdosRenyi(rng, n, m, true)
	gen.AssignLabels(rng, g, 3)
	q := gen.Pattern(rng, 4, 6, 3)
	return g, q
}

func TestSimfpMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g, q := randomInputs(seed, 40, 150)
		if !Simfp(g, q).Equal(Naive(g, q)) {
			t.Fatalf("seed %d: Simfp != Naive", seed)
		}
	}
}

func TestEngineInstanceMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, q := randomInputs(seed, 30, 100)
		inst := NewInstance(g, q)
		eng := fixpoint.New[bool](inst, fixpoint.FIFOOrder)
		eng.Run()
		want := Naive(g, q)
		got := Relation{NQ: q.NumNodes(), Bits: eng.State().Val}
		if !got.Equal(want) {
			t.Fatalf("seed %d: engine relation != Naive", seed)
		}
	}
}

func TestSimKnownSmall(t *testing.T) {
	// Data: 0(a) -> 1(b); pattern: A(a) -> B(b). 0 matches A, 1 matches B.
	g := graph.New(3, true)
	g.SetLabel(0, 'a')
	g.SetLabel(1, 'b')
	g.SetLabel(2, 'a') // a-node with no b-successor: must not match A
	g.InsertEdge(0, 1, 1)
	q := graph.New(2, true)
	q.SetLabel(0, 'a')
	q.SetLabel(1, 'b')
	q.InsertEdge(0, 1, 1)
	r := Simfp(g, q)
	if !r.Match(0, 0) || !r.Match(1, 1) || r.Match(2, 0) || r.Match(0, 1) {
		t.Fatalf("relation wrong: %+v", r.Bits)
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
}

type maintainer interface {
	Apply(graph.Batch) int
	Relation() Relation
	Graph() *graph.Graph
}

func checkMaintainer(t *testing.T, name string, mk func(g, q *graph.Graph) maintainer) {
	t.Helper()
	for seed := int64(0); seed < 10; seed++ {
		g, q := randomInputs(seed, 50, 200)
		m := mk(g, q)
		rng := rand.New(rand.NewSource(seed + 100))
		for round := 0; round < 6; round++ {
			b := gen.RandomUpdates(rng, m.Graph(), 16, 0.5)
			m.Apply(b)
			want := Simfp(m.Graph(), q)
			if !m.Relation().Equal(want) {
				t.Fatalf("%s seed %d round %d: relation mismatch", name, seed, round)
			}
		}
	}
}

func TestIncAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncSim", func(g, q *graph.Graph) maintainer { return NewInc(g, q) })
}

func TestIncEngineAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncSimEngine", func(g, q *graph.Graph) maintainer { return NewIncEngine(g, q) })
}

// The tuned counter-based IncSim and the generic-engine IncSim must agree
// pair for pair across rounds.
func TestTunedMatchesEngine(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g, q := randomInputs(seed, 40, 160)
		tuned := NewInc(g.Clone(), q)
		eng := NewIncEngine(g.Clone(), q)
		rng := rand.New(rand.NewSource(seed + 50))
		for round := 0; round < 6; round++ {
			b := gen.RandomUpdates(rng, tuned.Graph(), 12, 0.5)
			tuned.Apply(b)
			eng.Apply(b)
			if !tuned.Relation().Equal(eng.Relation()) {
				t.Fatalf("seed %d round %d: tuned != engine", seed, round)
			}
		}
	}
}

func TestIncUnitAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncSim_n", func(g, q *graph.Graph) maintainer { return NewIncUnit(g, q) })
}

func TestIncMatchAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncMatch", func(g, q *graph.Graph) maintainer { return NewIncMatch(g, q) })
}

// cyclicFixtures builds the hard case for incremental simulation: a cyclic
// pattern (a ⇄ a) and a data chain that an insertion closes into a cycle,
// turning on matches arbitrarily far from the inserted edge.
func cyclicFixtures(chain int) (*graph.Graph, *graph.Graph) {
	g := graph.New(chain, true)
	for v := 0; v < chain; v++ {
		g.SetLabel(graph.NodeID(v), 'a')
	}
	for v := 0; v+1 < chain; v++ {
		g.InsertEdge(graph.NodeID(v), graph.NodeID(v+1), 1)
	}
	q := graph.New(2, true)
	q.SetLabel(0, 'a')
	q.SetLabel(1, 'a')
	q.InsertEdge(0, 1, 1)
	q.InsertEdge(1, 0, 1)
	return g, q
}

func TestIncCyclicPatternInsertion(t *testing.T) {
	for _, mkName := range []string{"IncSim", "IncMatch"} {
		g, q := cyclicFixtures(30)
		var m maintainer
		if mkName == "IncSim" {
			m = NewInc(g, q)
		} else {
			m = NewIncMatch(g, q)
		}
		if m.Relation().Count() != 0 {
			t.Fatalf("%s: chain should match nothing before closing", mkName)
		}
		// Close the chain into a cycle: now every node matches both
		// pattern nodes.
		m.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 29, To: 0, W: 1}})
		want := Simfp(m.Graph(), q)
		if want.Count() != 60 {
			t.Fatalf("fixture wrong: batch count %d", want.Count())
		}
		if !m.Relation().Equal(want) {
			t.Fatalf("%s: cyclic insertion not repaired", mkName)
		}
		// And breaking the cycle turns everything off again.
		m.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 10, To: 11}})
		if m.Relation().Count() != 0 {
			t.Fatalf("%s: cyclic deletion not propagated", mkName)
		}
	}
}

func TestIncBoundedOnLocalUpdate(t *testing.T) {
	// A single random update on a large graph must inspect far less than
	// the batch run.
	g, q := randomInputs(7, 4000, 16000)
	m := NewIncEngine(g, q)
	batch := m.Stats().Inspected()
	rng := rand.New(rand.NewSource(7))
	before := m.Stats().Inspected()
	m.Apply(gen.RandomUpdates(rng, g, 2, 0.5))
	delta := m.Stats().Inspected() - before
	if delta*10 > batch {
		t.Fatalf("incremental inspected %d vs batch %d", delta, batch)
	}
}

func TestRelationHelpers(t *testing.T) {
	r := NewRelation(2, 3)
	if r.Count() != 0 || r.Match(1, 2) {
		t.Fatal("fresh relation not empty")
	}
	r.Bits[1*3+2] = true
	if !r.Match(1, 2) || r.Count() != 1 {
		t.Fatal("Match/Count wrong")
	}
	o := NewRelation(2, 3)
	if r.Equal(o) {
		t.Fatal("Equal wrong")
	}
	if r.Equal(NewRelation(3, 2)) {
		t.Fatal("shape mismatch not detected")
	}
}
