package sssp

import (
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// RR is the Ramalingam–Reps dynamic SSSP algorithm for unit updates [39],
// the competitor of the paper's Exp-1. It maintains only the distance
// vector. Insertions run a bounded relaxation; deletions identify the
// affected region (nodes all of whose tight in-edges lead into the
// region), reset it, and re-run Dijkstra from its boundary.
type RR struct {
	g    *graph.Graph
	src  graph.NodeID
	dist []int64
}

// NewRR computes the initial distances and returns the algorithm.
func NewRR(g *graph.Graph, src graph.NodeID) *RR {
	return &RR{g: g, src: src, dist: Dijkstra(g, src)}
}

// Dist returns the current distance vector.
func (r *RR) Dist() []int64 { return r.dist }

// Graph returns the maintained graph.
func (r *RR) Graph() *graph.Graph { return r.g }

// Apply processes a batch as a sequence of unit updates, RR's native mode.
func (r *RR) Apply(b graph.Batch) int {
	for _, u := range b {
		r.applyUnit(u)
	}
	return 0
}

func (r *RR) applyUnit(u graph.Update) {
	switch u.Kind {
	case graph.InsertEdge:
		if !r.g.InsertEdge(u.From, u.To, u.W) {
			return
		}
		r.relaxFrom(u.From, u.To, u.W)
		if !r.g.Directed() {
			r.relaxFrom(u.To, u.From, u.W)
		}
	case graph.DeleteEdge:
		w := r.g.Weight(u.From, u.To)
		if !r.g.DeleteEdge(u.From, u.To) {
			return
		}
		r.deleteRepair(u.From, u.To, w)
		if !r.g.Directed() {
			r.deleteRepair(u.To, u.From, w)
		}
	}
}

// relaxFrom propagates a potential improvement along the new edge (a, b).
func (r *RR) relaxFrom(a, b graph.NodeID, w int64) {
	if r.dist[a] >= Infinity || r.dist[a]+w >= r.dist[b] {
		return
	}
	r.dist[b] = r.dist[a] + w
	que := pq.New(r.g.NumNodes(), func(x, y int32) bool { return r.dist[x] < r.dist[y] })
	que.AddOrAdjust(int32(b))
	for {
		x, ok := que.Pop()
		if !ok {
			return
		}
		v := graph.NodeID(x)
		for _, e := range r.g.Out(v) {
			if alt := r.dist[v] + e.W; alt < r.dist[e.To] {
				r.dist[e.To] = alt
				que.AddOrAdjust(int32(e.To))
			}
		}
	}
}

// deleteRepair restores distances after removing edge (a, b) of weight w.
func (r *RR) deleteRepair(a, b graph.NodeID, w int64) {
	if r.dist[a] >= Infinity || r.dist[a]+w != r.dist[b] {
		return // the removed edge was not tight: distances unaffected
	}
	if r.best(b) == r.dist[b] {
		return // b still has a tight in-edge
	}
	// Phase 1: collect the affected region. A node joins when all its
	// tight in-edges come from nodes already in the region.
	affected := map[graph.NodeID]bool{b: true}
	queue := []graph.NodeID{b}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range r.g.Out(x) {
			y := e.To
			if affected[y] || r.dist[y] >= Infinity || r.dist[x]+e.W != r.dist[y] {
				continue
			}
			if r.hasUnaffectedTightEdge(y, affected) {
				continue
			}
			affected[y] = true
			queue = append(queue, y)
		}
	}
	// Phase 2: reset the region and run Dijkstra from its boundary.
	for x := range affected {
		r.dist[x] = Infinity
	}
	que := pq.New(r.g.NumNodes(), func(x, y int32) bool { return r.dist[x] < r.dist[y] })
	for x := range affected {
		if d := r.best(x); d < r.dist[x] {
			r.dist[x] = d
			que.AddOrAdjust(int32(x))
		}
	}
	for {
		xi, ok := que.Pop()
		if !ok {
			return
		}
		v := graph.NodeID(xi)
		for _, e := range r.g.Out(v) {
			if alt := r.dist[v] + e.W; alt < r.dist[e.To] {
				r.dist[e.To] = alt
				que.AddOrAdjust(int32(e.To))
			}
		}
	}
}

// best returns the minimum in-neighbor distance plus weight for v.
func (r *RR) best(v graph.NodeID) int64 {
	if v == r.src {
		return 0
	}
	best := Infinity
	for _, e := range r.g.In(v) {
		if d := r.dist[e.To]; d < Infinity && d+e.W < best {
			best = d + e.W
		}
	}
	return best
}

func (r *RR) hasUnaffectedTightEdge(y graph.NodeID, affected map[graph.NodeID]bool) bool {
	if y == r.src {
		return true
	}
	for _, e := range r.g.In(y) {
		u := e.To
		if !affected[u] && r.dist[u] < Infinity && r.dist[u]+e.W == r.dist[y] {
			return true
		}
	}
	return false
}

// DynDij is the batch-update dynamic SSSP competitor in the style of Chan
// and Yang [17]: it maintains a shortest-path tree, invalidates the
// subtrees hanging below deleted or worsened tree edges, and re-runs
// Dijkstra from the valid boundary plus the inserted edges.
type DynDij struct {
	g       *graph.Graph
	src     graph.NodeID
	dist    []int64
	parent  []graph.NodeID
	pending graph.Batch
}

// NewDynDij computes the initial tree and returns the algorithm.
func NewDynDij(g *graph.Graph, src graph.NodeID) *DynDij {
	d := &DynDij{g: g, src: src}
	d.rebuild()
	return d
}

func (d *DynDij) rebuild() {
	d.dist = Dijkstra(d.g, d.src)
	d.parent = make([]graph.NodeID, d.g.NumNodes())
	for v := range d.parent {
		d.parent[v] = -1
	}
	for v := 0; v < d.g.NumNodes(); v++ {
		if d.dist[v] >= Infinity || graph.NodeID(v) == d.src {
			continue
		}
		for _, e := range d.g.In(graph.NodeID(v)) {
			if d.dist[e.To] < Infinity && d.dist[e.To]+e.W == d.dist[v] {
				d.parent[v] = e.To
				break
			}
		}
	}
}

// Dist returns the current distance vector.
func (d *DynDij) Dist() []int64 { return d.dist }

// Graph returns the maintained graph.
func (d *DynDij) Graph() *graph.Graph { return d.g }

// Apply processes the whole batch: apply ΔG, invalidate affected subtrees,
// then one Dijkstra pass over the invalidated region and insertion seeds.
func (d *DynDij) Apply(b graph.Batch) int {
	d.Stage(b)
	return d.Repair()
}

// Stage materializes G ⊕ ΔG; see (*Inc).Stage.
func (d *DynDij) Stage(b graph.Batch) {
	d.pending = append(d.pending, d.g.Apply(b.Net(d.g.Directed()))...)
	for len(d.dist) < d.g.NumNodes() {
		d.dist = append(d.dist, Infinity)
		d.parent = append(d.parent, -1)
	}
}

// Repair processes the staged updates.
func (d *DynDij) Repair() int {
	applied := d.pending
	d.pending = nil
	if len(applied) == 0 {
		return 0
	}
	var cuts []graph.NodeID
	var seeds []graph.Update
	for _, u := range applied {
		switch u.Kind {
		case graph.DeleteEdge:
			if d.parent[u.To] == u.From {
				cuts = append(cuts, u.To)
			}
			if !d.g.Directed() && d.parent[u.From] == u.To {
				cuts = append(cuts, u.From)
			}
		case graph.InsertEdge:
			seeds = append(seeds, u)
		}
	}
	affected := d.invalidate(cuts)
	que := pq.New(d.g.NumNodes(), func(x, y int32) bool { return d.dist[x] < d.dist[y] })
	for _, v := range affected {
		if w, p := d.bestWithParent(v); w < Infinity {
			d.dist[v], d.parent[v] = w, p
			que.AddOrAdjust(int32(v))
		}
	}
	relax := func(a, b graph.NodeID, w int64) {
		if d.dist[a] < Infinity && d.dist[a]+w < d.dist[b] {
			d.dist[b] = d.dist[a] + w
			d.parent[b] = a
			que.AddOrAdjust(int32(b))
		}
	}
	for _, u := range seeds {
		relax(u.From, u.To, u.W)
		if !d.g.Directed() {
			relax(u.To, u.From, u.W)
		}
	}
	for {
		xi, ok := que.Pop()
		if !ok {
			break
		}
		v := graph.NodeID(xi)
		for _, e := range d.g.Out(v) {
			relax(v, e.To, e.W)
		}
	}
	return len(affected)
}

// invalidate resets the subtrees rooted at cuts and returns the reset
// nodes.
func (d *DynDij) invalidate(cuts []graph.NodeID) []graph.NodeID {
	if len(cuts) == 0 {
		return nil
	}
	children := make([][]graph.NodeID, d.g.NumNodes())
	for v := 0; v < d.g.NumNodes(); v++ {
		if p := d.parent[v]; p >= 0 {
			children[p] = append(children[p], graph.NodeID(v))
		}
	}
	var affected []graph.NodeID
	var stack []graph.NodeID
	for _, c := range cuts {
		if d.dist[c] < Infinity {
			stack = append(stack, c)
		}
	}
	seen := map[graph.NodeID]bool{}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		d.dist[v] = Infinity
		d.parent[v] = -1
		affected = append(affected, v)
		stack = append(stack, children[v]...)
	}
	return affected
}

// bestWithParent returns v's best distance via in-neighbors with finite
// distance, and the achieving parent.
func (d *DynDij) bestWithParent(v graph.NodeID) (int64, graph.NodeID) {
	if v == d.src {
		return 0, -1
	}
	best, parent := Infinity, graph.NodeID(-1)
	for _, e := range d.g.In(v) {
		if dd := d.dist[e.To]; dd < Infinity && dd+e.W < best {
			best, parent = dd+e.W, e.To
		}
	}
	return best, parent
}
