package sssp

import (
	"math/rand"
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
)

// TestConditionC2 certifies the paper's condition (C2) for the SSSP
// instance — contracting and monotonic — plus the consistency of its
// relaxation fast path, the preconditions of Theorem 3.
func TestConditionC2(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 50, 200, true)
		inst := &Instance{G: g, Src: 0}
		if !fixpoint.CheckContracting[int64](inst) {
			t.Fatalf("seed %d: not contracting", seed)
		}
		eng := fixpoint.New[int64](inst, fixpoint.PriorityOrder)
		eng.Run()
		if !fixpoint.CheckMonotonic[int64](inst, eng.State(), rng, 300) {
			t.Fatalf("seed %d: not monotonic", seed)
		}
		if !fixpoint.CheckRelaxerConsistency[int64](inst, eng.State()) {
			t.Fatalf("seed %d: RelaxOut disagrees with Update", seed)
		}
	}
}
