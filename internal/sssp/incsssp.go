package sssp

import (
	"fmt"
	"time"

	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// Inc is the deduced incremental algorithm IncSSSP of Fig. 5, sharing
// Dijkstra's data structures verbatim: the distance array and an indexed
// priority queue. IncSSSP is *deducible* — it needs no timestamps, because
// the order <_C is the distance order already present in the fixpoint
// (with positive weights, every anchor's distance is strictly smaller than
// its dependent's).
//
// Apply = Stage (materialize G ⊕ ΔG) + Repair:
//
//  1. the initial scope function h revises potentially infeasible
//     distances in ascending old-distance order, substituting ∞ for
//     inputs determined later (Fig. 4), seeded by the heads of deleted
//     tight edges;
//  2. the resumed step function is Dijkstra's own loop (lines 4-10 of
//     Fig. 1), seeded with the revised nodes and the tails of inserted
//     edges.
//
// An Inc is not goroutine-safe: it (and the graph it owns) must be
// driven by a single writer goroutine making every call, reads included —
// accessors alias internal state that Apply mutates. Concurrent serving
// goes through internal/serve, which gives each maintainer one apply
// loop and publishes immutable snapshots to readers.
type Inc struct {
	g    *graph.Graph
	flat *graph.Flat // CSR+overlay adjacency; nil when built WithoutFlat
	src  graph.NodeID

	dist []int64
	wq   *pq.Heap // step-function queue, keyed by current distance

	hq      *pq.Heap // h's queue, keyed by old distance
	hkey    []int64
	oldVal  []int64 // pre-revision distances of this round's revised nodes
	mark    []int64 // epoch marks: revised this round
	affMark []int64 // epoch marks: AFF membership (work ledger)
	chMark  []int64 // epoch marks: written this repair (work ledger)
	chOld   []int64 // repair-start distances of written nodes (work ledger)
	chList  []graph.NodeID // written nodes, swept at end of Repair
	epoch   int64

	pending graph.Batch
	stats   fixpoint.Stats
	tracer  fixpoint.Tracer

	// Parallel resume mode (see parallel.go). Zero-valued for sequential
	// maintainers, so the default path allocates nothing extra.
	workers    int
	pool       *fixpoint.Pool
	ws         []ssspWorker
	parts      []ssspPart
	frontier   []graph.NodeID
	parRelaxFn func(int)
	par        fixpoint.ParStats
}

// Option configures an incremental maintainer.
type Option func(*incOpts)

type incOpts struct{ noFlat bool }

// WithoutFlat disables the flat CSR+overlay adjacency view, keeping the
// legacy pointer-list hot path. Used by differential tests that pin the
// two paths against each other.
func WithoutFlat() Option { return func(o *incOpts) { o.noFlat = true } }

// NewInc runs Dijkstra and returns the incremental algorithm positioned
// at its fixpoint.
func NewInc(g *graph.Graph, src graph.NodeID, opts ...Option) *Inc {
	var o incOpts
	for _, f := range opts {
		f(&o)
	}
	i := &Inc{g: g, src: src, dist: Dijkstra(g, src)}
	if !o.noFlat {
		i.flat = graph.NewFlat(g)
	}
	n := g.NumNodes()
	i.wq = pq.New(n, func(a, b int32) bool { return i.dist[a] < i.dist[b] })
	i.hq = pq.New(n, func(a, b int32) bool { return i.hkey[a] < i.hkey[b] })
	i.hkey = make([]int64, n)
	i.oldVal = make([]int64, n)
	i.mark = make([]int64, n)
	i.affMark = make([]int64, n)
	i.chMark = make([]int64, n)
	i.chOld = make([]int64, n)
	i.chList = make([]graph.NodeID, 0, n)
	return i
}

// Graph returns the maintained graph.
func (i *Inc) Graph() *graph.Graph { return i.g }

// Flat returns the maintainer's flat adjacency view (nil WithoutFlat),
// for observability of overlay size and compaction counts.
func (i *Inc) Flat() *graph.Flat { return i.flat }

// SetCompactThreshold sets the flat view's overlay-to-base compaction
// ratio (see graph.Flat.SetCompactThreshold). No-op when the maintainer
// was built WithoutFlat. Single-writer contract: call between Applies.
func (i *Inc) SetCompactThreshold(t float64) {
	if i.flat != nil {
		i.flat.SetCompactThreshold(t)
	}
}

// Dist returns the current distance vector, aliased to internal state.
func (i *Inc) Dist() []int64 { return i.dist }

// Stats exposes inspection counters and the h/resume time split.
func (i *Inc) Stats() fixpoint.Stats { return i.stats }

// RestoreState overwrites the distance vector with one exported from a
// checkpoint of the same graph. IncSSSP is deducible — the distances ARE
// its complete incremental state (the order <_C is the distance order),
// so dist is all a checkpoint needs to persist. The slice is copied.
func (i *Inc) RestoreState(dist []int64) error {
	if len(dist) != i.g.NumNodes() {
		return fmt.Errorf("sssp: restore of %d distances into graph with %d nodes", len(dist), i.g.NumNodes())
	}
	copy(i.dist, dist)
	return nil
}

// SetTracer installs the span hook observing Repair's h and resume
// phases (see fixpoint.Tracer). Inc is not engine-based, so it drives
// the tracer itself: BeginRun carries the staged-update count as the
// touched size, and rounds are not reported — Dijkstra's priority loop
// has no BFS-level structure. Call from the single writer goroutine.
func (i *Inc) SetTracer(t fixpoint.Tracer) { i.tracer = t }

// Apply computes G ⊕ ΔG and incrementally repairs the distances,
// returning |H⁰|.
func (i *Inc) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG without repairing, so benchmarks can time
// Repair — the algorithm proper — separately from graph mutation.
func (i *Inc) Stage(b graph.Batch) {
	applied := i.g.Apply(b.Net(i.g.Directed()))
	i.pending = append(i.pending, applied...)
	if i.flat != nil {
		i.flat.Stage(i.g, applied)
		i.flat.MaybeCompact(i.g)
	}
	for len(i.dist) < i.g.NumNodes() {
		i.dist = append(i.dist, Infinity)
		i.hkey = append(i.hkey, 0)
		i.oldVal = append(i.oldVal, 0)
		i.mark = append(i.mark, 0)
		i.affMark = append(i.affMark, 0)
		i.chMark = append(i.chMark, 0)
		i.chOld = append(i.chOld, 0)
	}
	if cap(i.chList) < len(i.dist) {
		cl := make([]graph.NodeID, len(i.chList), len(i.dist))
		copy(cl, i.chList)
		i.chList = cl
	}
	i.wq.Grow(len(i.dist))
	i.hq.Grow(len(i.dist))
}

// ledgerAff records v's first entry into this repair's affected area:
// |AFF| grows by one and ‖AFF‖ by v's incident edges. Allocation-free:
// membership is an epoch mark, degrees are adjacency-slice lengths.
func (i *Inc) ledgerAff(v graph.NodeID) {
	if i.affMark[v] == i.epoch {
		return
	}
	i.affMark[v] = i.epoch
	i.stats.Ledger.Aff++
	deg := int64(len(i.g.Out(v)))
	if i.g.Directed() {
		deg += int64(len(i.g.In(v)))
	}
	i.stats.Ledger.AffEdges += deg
}

// ledgerWrite records a distance write at v, capturing the pre-write value
// on the first write of this repair — v's repair-start distance. The
// settle sweep at the end of Repair compares it against the fixpoint:
// CHANGED is {v : dist_final ≠ dist_start}, which — unlike "installed at
// least once" — does not count transient moves that revert, and is
// therefore identical between the sequential and parallel resume paths.
func (i *Inc) ledgerWrite(v graph.NodeID, old int64) {
	if i.chMark[v] == i.epoch {
		return
	}
	i.chMark[v] = i.epoch
	i.chOld[v] = old
	i.chList = append(i.chList, v)
}

// ledgerSettle sweeps the repair's written nodes into CHANGED (and AFF)
// where the final distance differs from the repair-start one.
func (i *Inc) ledgerSettle() {
	for _, v := range i.chList {
		if i.dist[v] != i.chOld[v] {
			i.stats.Ledger.Changed++
			i.ledgerAff(v)
		}
	}
	i.chList = i.chList[:0]
}

// oldDist returns v's distance as of the start of this round.
func (i *Inc) oldDist(v graph.NodeID) int64 {
	if i.mark[v] == i.epoch {
		return i.oldVal[v]
	}
	return i.dist[v]
}

// Repair runs h and the resumed step function over the staged updates.
func (i *Inc) Repair() int {
	applied := i.pending
	i.pending = nil
	if len(applied) == 0 {
		return 0
	}
	i.epoch++
	i.chList = i.chList[:0]
	st0 := i.stats
	i.stats.Ledger.Runs++
	i.stats.Ledger.Touched += int64(len(applied))
	i.stats.Ledger.RecomputeEst = int64(i.g.NumNodes())
	if i.tracer != nil {
		i.tracer.BeginRun(len(applied), 0)
	}
	start := time.Now()

	// Seed h with the heads of deleted tight edges (anchor candidates);
	// inserted edges only improve their heads, so their tails go straight
	// to the step-function queue.
	h0 := 0
	tight := func(u, v graph.NodeID, w int64) bool {
		return i.dist[u] < Infinity && i.dist[u]+w == i.dist[v]
	}
	for _, up := range applied {
		if up.Kind != graph.DeleteEdge {
			continue
		}
		if tight(up.From, up.To, up.W) {
			i.hEnqueue(up.To)
		}
		if !i.g.Directed() && tight(up.To, up.From, up.W) {
			i.hEnqueue(up.From)
		}
	}

	// h (Fig. 4): revise in ascending old-distance order. Nodes whose old
	// values survive the feasibility check need no further action: their
	// update functions lost only non-tight candidates.
	var revised []graph.NodeID
	for {
		x, ok := i.hq.Pop()
		if !ok {
			break
		}
		i.stats.HPops++
		h0++
		v := graph.NodeID(x)
		i.ledgerAff(v)
		dv := i.oldDist(v)
		newv := i.feasibleValue(v, dv)
		if newv > i.dist[v] {
			if i.mark[v] != i.epoch {
				i.mark[v] = i.epoch
				i.oldVal[v] = i.dist[v]
			}
			i.ledgerWrite(v, i.dist[v])
			i.dist[v] = newv
			i.stats.HResets++
			revised = append(revised, v)
			// Propagate along v's anchor edges only: C_xw = tight in-edges
			// (Example 3), i.e. out-edges (v, w) with old dist_v + w(v, w)
			// = old dist_w. Non-tight edges never justified w's value.
			if i.flat != nil {
				i.hAnchorsFlat(v, dv)
			} else {
				for _, e := range i.g.Out(v) {
					if dv < Infinity && dv+e.W == i.oldDist(e.To) {
						i.hEnqueue(e.To)
					}
				}
			}
		}
	}
	mid := time.Now()
	if i.tracer != nil {
		i.tracer.ScopeDone(i.stats.HPops-st0.HPops, i.stats.HResets-st0.HResets, int64(h0))
	}

	// Resume the batch step function: recompute the revised nodes from
	// actual values, relax the inserted edges against the (now feasible)
	// status, then run Dijkstra's loop (lines 4-10 of Fig. 1).
	for _, v := range revised {
		if nb := i.best(v); nb != i.dist[v] {
			i.ledgerWrite(v, i.dist[v])
			i.dist[v] = nb
		}
		i.wq.AddOrAdjust(int32(v))
	}
	relax := func(u, v graph.NodeID, w int64) {
		i.ledgerAff(u) // push-seed analog: the tail re-propagates
		if i.dist[u] < Infinity && i.dist[u]+w < i.dist[v] {
			i.ledgerWrite(v, i.dist[v])
			i.dist[v] = i.dist[u] + w
			i.wq.AddOrAdjust(int32(v))
		}
	}
	for _, up := range applied {
		if up.Kind != graph.InsertEdge {
			continue
		}
		i.stats.Ledger.Seeds++
		relax(up.From, up.To, up.W)
		if !i.g.Directed() {
			relax(up.To, up.From, up.W)
		}
	}
	if i.workers > 1 {
		i.drainParallel()
	} else {
		// The outer loop counts BFS-level rounds into the ledger (queue
		// size at round start bounds the inner pops) without changing
		// Dijkstra's pop order.
		for i.wq.Len() > 0 {
			i.stats.Ledger.Rounds++
			for n := i.wq.Len(); n > 0; n-- {
				x, ok := i.wq.Pop()
				if !ok {
					break
				}
				i.stats.Pops++
				v := graph.NodeID(x)
				dv := i.dist[v]
				if dv >= Infinity {
					continue
				}
				if i.flat != nil {
					i.relaxOutFlat(v, dv)
					continue
				}
				for _, e := range i.g.Out(v) {
					i.stats.Updates++
					if alt := dv + e.W; alt < i.dist[e.To] {
						i.ledgerWrite(e.To, i.dist[e.To])
						i.dist[e.To] = alt
						i.wq.AddOrAdjust(int32(e.To))
					}
				}
			}
		}
	}
	i.ledgerSettle()
	i.stats.ScopeSize = int64(h0)
	i.stats.HSeconds += mid.Sub(start).Seconds()
	i.stats.ResumeSeconds += time.Since(mid).Seconds()
	if i.tracer != nil {
		// Inc does not count value changes in the resume phase; the pops
		// delta carries the propagation cost.
		i.tracer.EndRun(i.stats.Pops-st0.Pops, 0)
	}
	return h0
}

func (i *Inc) hEnqueue(v graph.NodeID) {
	i.hkey[v] = i.oldDist(v)
	i.hq.AddOrAdjust(int32(v))
}

// hAnchorsFlat is the flat-span form of h's anchor propagation: enqueue
// every out-neighbor w with old dist_v + w(v, w) = old dist_w.
func (i *Inc) hAnchorsFlat(v graph.NodeID, dv int64) {
	if dv >= Infinity {
		return
	}
	ts, ws, dead, extra := i.flat.OutSpans(v)
	if dead == nil {
		for k, t := range ts {
			if dv+ws[k] == i.oldDist(t) {
				i.hEnqueue(t)
			}
		}
	} else {
		for k, t := range ts {
			if !dead[k] && dv+ws[k] == i.oldDist(t) {
				i.hEnqueue(t)
			}
		}
	}
	for _, e := range extra {
		if dv+e.W == i.oldDist(e.To) {
			i.hEnqueue(e.To)
		}
	}
}

// relaxOutFlat relaxes every live out-edge of v at distance dv through
// the flat spans: the struct-of-arrays inner loop of the resumed
// Dijkstra, scanning contiguous target and weight arrays instead of
// chasing []Edge pointers.
func (i *Inc) relaxOutFlat(v graph.NodeID, dv int64) {
	ts, ws, dead, extra := i.flat.OutSpans(v)
	if dead == nil {
		for k, t := range ts {
			i.stats.Updates++
			if alt := dv + ws[k]; alt < i.dist[t] {
				i.ledgerWrite(t, i.dist[t])
				i.dist[t] = alt
				i.wq.AddOrAdjust(int32(t))
			}
		}
	} else {
		for k, t := range ts {
			if dead[k] {
				continue
			}
			i.stats.Updates++
			if alt := dv + ws[k]; alt < i.dist[t] {
				i.ledgerWrite(t, i.dist[t])
				i.dist[t] = alt
				i.wq.AddOrAdjust(int32(t))
			}
		}
	}
	for _, e := range extra {
		i.stats.Updates++
		if alt := dv + e.W; alt < i.dist[e.To] {
			i.ledgerWrite(e.To, i.dist[e.To])
			i.dist[e.To] = alt
			i.wq.AddOrAdjust(int32(e.To))
		}
	}
}

// feasibleValue evaluates f_v on the feasible input set Ȳ_v: in-neighbors
// determined at or after v in the old distance order contribute their
// initial value ∞ (Fig. 4, lines 5-6). The flat path folds the meet with
// the branch-free MinInt64; distances stay within [0, Infinity] with
// Infinity = MaxInt64/4, so the no-overflow precondition holds.
func (i *Inc) feasibleValue(v graph.NodeID, dv int64) int64 {
	if v == i.src {
		return 0
	}
	best := Infinity
	if i.flat != nil {
		ts, ws, dead, extra := i.flat.InSpans(v)
		for k, u := range ts {
			if dead != nil && dead[k] {
				continue
			}
			i.stats.Reads++
			if i.oldDist(u) >= dv {
				continue // determined later: its feasible stand-in is ∞
			}
			if d := i.dist[u]; d < Infinity {
				best = fixpoint.MinInt64(best, d+ws[k])
			}
		}
		for _, e := range extra {
			i.stats.Reads++
			if i.oldDist(e.To) >= dv {
				continue
			}
			if d := i.dist[e.To]; d < Infinity {
				best = fixpoint.MinInt64(best, d+e.W)
			}
		}
		return best
	}
	for _, e := range i.g.In(v) {
		i.stats.Reads++
		u := e.To
		if i.oldDist(u) >= dv {
			continue // determined later: its feasible stand-in is ∞
		}
		if d := i.dist[u]; d < Infinity && d+e.W < best {
			best = d + e.W
		}
	}
	return best
}

// best is Dijkstra's relaxation target: the minimum in-neighbor distance
// plus weight, on actual current values (branch-free meet on the flat
// path).
func (i *Inc) best(v graph.NodeID) int64 {
	if v == i.src {
		return 0
	}
	best := Infinity
	if i.flat != nil {
		ts, ws, dead, extra := i.flat.InSpans(v)
		for k, u := range ts {
			if dead != nil && dead[k] {
				continue
			}
			i.stats.Reads++
			if d := i.dist[u]; d < Infinity {
				best = fixpoint.MinInt64(best, d+ws[k])
			}
		}
		for _, e := range extra {
			i.stats.Reads++
			if d := i.dist[e.To]; d < Infinity {
				best = fixpoint.MinInt64(best, d+e.W)
			}
		}
		return best
	}
	for _, e := range i.g.In(v) {
		i.stats.Reads++
		if d := i.dist[e.To]; d < Infinity && d+e.W < best {
			best = d + e.W
		}
	}
	return best
}
