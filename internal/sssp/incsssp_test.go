package sssp

import (
	"math/rand"
	"reflect"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// Scenarios targeting the tuned IncSSSP's anchor logic.

func TestTunedTightDeletionWithTieSurvives(t *testing.T) {
	// Two equally short paths to node 3; deleting one tight edge must not
	// change the distance, and h must confirm feasibility without resets.
	g := graph.New(4, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(1, 3, 1)
	g.InsertEdge(2, 3, 1)
	inc := NewInc(g, 0)
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 3}})
	if inc.Dist()[3] != 2 {
		t.Fatalf("dist[3] = %d, want 2 via the surviving path", inc.Dist()[3])
	}
	if inc.Stats().HResets != 0 {
		t.Fatalf("tie deletion caused %d resets", inc.Stats().HResets)
	}
}

func TestTunedNonTightDeletionFree(t *testing.T) {
	// Deleting a slack edge must not even enter h's queue.
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(1, 2, 9) // slack: 0→2 direct is shorter
	inc := NewInc(g, 0)
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 2}})
	if inc.Stats().HPops != 0 {
		t.Fatalf("slack deletion popped %d h entries", inc.Stats().HPops)
	}
	if inc.Dist()[2] != 1 {
		t.Fatalf("dist[2] = %d", inc.Dist()[2])
	}
}

func TestTunedCascadeDepth(t *testing.T) {
	// Cutting the head of a long chain must cascade resets down the whole
	// chain (the genuine affected area), then resume re-derives ∞.
	const n = 50
	g := graph.New(n, true)
	for v := 0; v+1 < n; v++ {
		g.InsertEdge(graph.NodeID(v), graph.NodeID(v+1), 1)
	}
	inc := NewInc(g, 0)
	h0 := inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 0, To: 1}})
	if h0 != n-1 {
		t.Fatalf("|H0| = %d, want %d (the whole chain)", h0, n-1)
	}
	for v := 1; v < n; v++ {
		if inc.Dist()[v] != Infinity {
			t.Fatalf("dist[%d] = %d after disconnection", v, inc.Dist()[v])
		}
	}
	// Reconnect at the far end: improvement flows back without h.
	inc.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: graph.NodeID(n - 1), W: 5}})
	if inc.Dist()[n-1] != 5 {
		t.Fatalf("dist[last] = %d after reconnect", inc.Dist()[n-1])
	}
}

func TestTunedWeightDecreaseViaNet(t *testing.T) {
	// A weight change arrives as delete+insert in one batch; Net collapses
	// and the head improves through the relax seed.
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 9)
	g.InsertEdge(1, 2, 1)
	inc := NewInc(g, 0)
	inc.Apply(graph.Batch{
		{Kind: graph.DeleteEdge, From: 0, To: 1},
		{Kind: graph.InsertEdge, From: 0, To: 1, W: 2},
	})
	if !reflect.DeepEqual(inc.Dist(), []int64{0, 2, 3}) {
		t.Fatalf("dist = %v", inc.Dist())
	}
}

func TestTunedMixedStormAgainstBellmanFord(t *testing.T) {
	// Heavier randomized storm than the generic maintainer check, with the
	// independent Bellman–Ford reference.
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.PowerLaw(rng, 300, 8, true)
		inc := NewInc(g, 0)
		for round := 0; round < 12; round++ {
			inc.Apply(gen.RandomUpdates(rng, inc.Graph(), 40, 0.5))
			if !reflect.DeepEqual(inc.Dist(), BellmanFord(inc.Graph(), 0)) {
				t.Fatalf("seed %d round %d: diverged from Bellman–Ford", seed, round)
			}
		}
	}
}

func TestTunedStageAccumulates(t *testing.T) {
	// Multiple Stage calls before one Repair behave like one big batch.
	g := graph.New(4, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	inc := NewInc(g, 0)
	inc.Stage(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 2}})
	inc.Stage(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 3, W: 4}})
	inc.Repair()
	want := Dijkstra(inc.Graph(), 0)
	if !reflect.DeepEqual(inc.Dist(), want) {
		t.Fatalf("dist = %v, want %v", inc.Dist(), want)
	}
}

func TestTunedUndirected(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 60, 180, false)
		inc := NewInc(g, 0)
		for round := 0; round < 6; round++ {
			inc.Apply(gen.RandomUpdates(rng, inc.Graph(), 20, 0.5))
			if !reflect.DeepEqual(inc.Dist(), Dijkstra(inc.Graph(), 0)) {
				t.Fatalf("seed %d round %d: undirected diverged", seed, round)
			}
		}
	}
}
