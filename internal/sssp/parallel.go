package sssp

import (
	"time"

	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
)

// Parallel execution mode for the specialized IncSSSP maintainer,
// mirroring the generic engine's round-level work-sharing (see
// internal/fixpoint/parallel.go): Repair's resumed Dijkstra loop is
// decomposed into rounds; each round's queue snapshot is partitioned into
// contiguous chunks across a reusable fixpoint.Pool, workers relax their
// chunk's out-edges against the frozen round-start distances into
// per-worker candidate buffers, and the driver merges the buffers
// sequentially in stable (worker, emission) order through the monotone
// meet (min). Distances converge to the same unique fixpoint as the
// sequential loop (chaotic relaxation over positive weights); the h phase
// stays sequential — it is ordered by <_C and bounded by |ΔG|.

// ssspCand is one buffered relaxation: distance d proposed for node v.
type ssspCand struct {
	v graph.NodeID
	d int64
}

// ssspWorker is the per-worker state of the parallel resume, reused
// across rounds and repairs.
type ssspWorker struct {
	cands   []ssspCand
	scanned int64 // out-edges examined this round (work/imbalance proxy)
	busy    int64 // compute nanos this round
}

// ssspPart is a half-open chunk [lo, hi) of the round's frontier.
type ssspPart struct{ lo, hi int }

// ssspParThreshold matches the engine's default: queues smaller than this
// are drained sequentially even in parallel mode.
const ssspParThreshold = 64

// SetWorkers sets the worker count for subsequent Repairs: n >= 2
// partitions every resume round whose queue reaches the internal
// threshold across n workers; n <= 1 restores the sequential loop (the
// default) with zero added allocations. Part of the single-writer
// contract: call only between Applies, from the writer goroutine.
func (i *Inc) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == i.workers || (n <= 1 && i.workers <= 1) {
		return
	}
	i.workers = n
	i.par.Workers = n
	if i.pool != nil {
		i.pool.Close()
		i.pool = nil
	}
	if n <= 1 {
		i.ws = nil
		i.parts = nil
		return
	}
	i.ws = make([]ssspWorker, n)
	i.parts = make([]ssspPart, n)
	if i.parRelaxFn == nil {
		i.parRelaxFn = func(w int) {
			t0 := time.Now()
			pw := &i.ws[w]
			for _, v := range i.frontier[i.parts[w].lo:i.parts[w].hi] {
				dv := i.dist[v]
				if dv >= Infinity {
					continue
				}
				if i.flat != nil {
					// Flat spans: workers scan the frozen CSR base (plus the
					// short overlay tail) with no pointer chasing. The flat
					// view is immutable for the whole resume — Stage ran
					// before Repair — so concurrent readers are safe.
					ts, ws, dead, extra := i.flat.OutSpans(v)
					for k, t := range ts {
						if dead != nil && dead[k] {
							continue
						}
						pw.scanned++
						if alt := dv + ws[k]; alt < i.dist[t] {
							pw.cands = append(pw.cands, ssspCand{t, alt})
						}
					}
					for _, e := range extra {
						pw.scanned++
						if alt := dv + e.W; alt < i.dist[e.To] {
							pw.cands = append(pw.cands, ssspCand{e.To, alt})
						}
					}
					continue
				}
				for _, e := range i.g.Out(v) {
					pw.scanned++
					if alt := dv + e.W; alt < i.dist[e.To] {
						pw.cands = append(pw.cands, ssspCand{e.To, alt})
					}
				}
			}
			pw.busy += time.Since(t0).Nanoseconds()
		}
	}
}

// Workers returns the configured worker count (1 = sequential).
func (i *Inc) Workers() int {
	if i.workers < 1 {
		return 1
	}
	return i.workers
}

// ParStats returns the cumulative parallel-resume counters; zero-valued
// while the maintainer runs sequentially.
func (i *Inc) ParStats() fixpoint.ParStats { return i.par }

// Close releases the worker pool, if any; the maintainer stays usable
// (the pool respawns lazily on the next parallel round).
func (i *Inc) Close() {
	if i.pool != nil {
		i.pool.Close()
		i.pool = nil
	}
}

// drainParallel is the parallel resumed step function: rounds below the
// threshold run the sequential relaxation inline (in Dijkstra's priority
// order); larger rounds are partitioned across the pool.
func (i *Inc) drainParallel() {
	round := 0
	for i.wq.Len() > 0 {
		frontier := i.wq.Len()
		round++
		i.stats.Ledger.Rounds++
		if frontier < ssspParThreshold {
			i.par.SeqRounds++
			for n := 0; n < frontier; n++ {
				x, ok := i.wq.Pop()
				if !ok {
					break
				}
				i.stats.Pops++
				v := graph.NodeID(x)
				dv := i.dist[v]
				if dv >= Infinity {
					continue
				}
				if i.flat != nil {
					i.relaxOutFlat(v, dv)
					continue
				}
				for _, e := range i.g.Out(v) {
					i.stats.Updates++
					if alt := dv + e.W; alt < i.dist[e.To] {
						i.ledgerWrite(e.To, i.dist[e.To])
						i.dist[e.To] = alt
						i.wq.AddOrAdjust(int32(e.To))
					}
				}
			}
			continue
		}
		i.parRound(round)
	}
}

// parRound processes one partitioned resume round.
func (i *Inc) parRound(round int) {
	if i.pool == nil {
		i.pool = fixpoint.NewPool(i.workers)
	}
	// Snapshot the queue in priority order — the deterministic basis for
	// partitioning and merging.
	i.frontier = i.frontier[:0]
	for {
		x, ok := i.wq.Pop()
		if !ok {
			break
		}
		i.frontier = append(i.frontier, graph.NodeID(x))
	}
	i.stats.Pops += int64(len(i.frontier))
	n := len(i.frontier)
	k := i.workers
	if k > n {
		k = n
	}
	chunk := (n + k - 1) / k
	k = (n + chunk - 1) / chunk
	for w := 0; w < k; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		i.parts[w] = ssspPart{lo, hi}
	}

	wall0 := time.Now()
	i.pool.Run(k, i.parRelaxFn)
	wall := time.Since(wall0).Nanoseconds()

	// Deterministic merge: stable (worker, emission) order, monotone min.
	var installs int64
	for w := 0; w < k; w++ {
		pw := &i.ws[w]
		i.stats.Updates += pw.scanned
		for _, c := range pw.cands {
			if c.d < i.dist[c.v] {
				i.ledgerWrite(c.v, i.dist[c.v])
				i.dist[c.v] = c.d
				i.wq.AddOrAdjust(int32(c.v))
				installs++
			}
		}
		pw.cands = pw.cands[:0]
	}

	var busy, busiest, busiestWork, totalWork int64
	for w := 0; w < k; w++ {
		pw := &i.ws[w]
		busy += pw.busy
		if pw.busy > busiest {
			busiest = pw.busy
		}
		if pw.scanned > busiestWork {
			busiestWork = pw.scanned
		}
		totalWork += pw.scanned
		pw.busy = 0
		pw.scanned = 0
	}
	i.par.ParRounds++
	i.par.Items += int64(n)
	i.par.Candidates += totalWork
	i.par.BusyNanos += busy
	i.par.WallNanos += wall
	imb := 1.0
	if totalWork > 0 {
		imb = float64(busiestWork) * float64(k) / float64(totalWork)
	}
	i.par.LastImbalance = imb
	if imb > i.par.MaxImbalance {
		i.par.MaxImbalance = imb
	}
	if i.tracer != nil {
		i.tracer.Round(round, int64(n), int64(n), installs, int64(i.wq.Len()))
		if pt, ok := i.tracer.(fixpoint.ParRoundTracer); ok {
			pt.ParRound(round, i.workers, int64(n), totalWork, busiest, wall)
		}
	}
}
