package sssp

import (
	"math/rand"
	"reflect"
	"testing"

	"incgraph/internal/fixpoint"
	"incgraph/internal/gen"
)

// TestParallelMatchesSequential is the differential test of the
// specialized maintainer's parallel resume: for randomized graphs and
// update batches, a parallel Inc's distances must be bit-identical to a
// sequential Inc's after every repair, on directed and undirected graphs.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, workers := range []int{2, 4, 8} {
			rng := rand.New(rand.NewSource(seed))
			g := gen.PowerLaw(rng, 400, 6, seed%2 == 0)
			seq := NewInc(g.Clone(), 0)
			par := NewInc(g.Clone(), 0)
			par.SetWorkers(workers)
			for round := 0; round < 5; round++ {
				b := gen.RandomUpdates(rng, seq.Graph(), 60, 0.5)
				seq.Apply(b)
				par.Apply(b)
				if !reflect.DeepEqual(seq.Dist(), par.Dist()) {
					t.Fatalf("seed %d workers %d round %d: parallel dist != sequential",
						seed, workers, round)
				}
			}
			// And against a fresh batch run on the final graph.
			if want := Dijkstra(par.Graph(), 0); !reflect.DeepEqual(par.Dist(), want) {
				t.Fatalf("seed %d workers %d: parallel dist != fresh Dijkstra", seed, workers)
			}
			par.Close()
		}
	}
}

// TestParallelDeterministic: same graph, same batches, same worker count
// ⇒ identical distances and identical deterministic counters.
func TestParallelDeterministic(t *testing.T) {
	build := func() *Inc {
		rng := rand.New(rand.NewSource(41))
		inc := NewInc(gen.PowerLaw(rng, 300, 8, true), 0)
		inc.SetWorkers(4)
		return inc
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for round := 0; round < 4; round++ {
		a.Apply(gen.RandomUpdates(rngA, a.Graph(), 80, 0.5))
		b.Apply(gen.RandomUpdates(rngB, b.Graph(), 80, 0.5))
	}
	if !reflect.DeepEqual(a.Dist(), b.Dist()) {
		t.Fatal("distances diverged between identical parallel repairs")
	}
	sa, sb := a.ParStats(), b.ParStats()
	sa.BusyNanos, sb.BusyNanos = 0, 0 // wall-clock fields legitimately differ
	sa.WallNanos, sb.WallNanos = 0, 0
	if sa != sb {
		t.Fatalf("parallel stats diverged: %+v vs %+v", sa, sb)
	}
}

// TestParallelStatsPopulated: large repairs on a parallel maintainer must
// actually take the partitioned path and report it.
func TestParallelStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc := NewInc(gen.PowerLaw(rng, 3000, 8, true), 0)
	inc.SetWorkers(4)
	defer inc.Close()
	// Deleting and reinserting many edges forces wide repair waves.
	for round := 0; round < 3; round++ {
		inc.Apply(gen.RandomUpdates(rng, inc.Graph(), 600, 0.5))
	}
	ps := inc.ParStats()
	if ps.ParRounds == 0 {
		t.Fatalf("no partitioned rounds on wide repairs: %+v", ps)
	}
	if ps.Workers != 4 || ps.Items == 0 || ps.Candidates == 0 {
		t.Fatalf("unpopulated parallel stats: %+v", ps)
	}
	if imb := ps.MaxImbalance; imb < 1 {
		t.Fatalf("MaxImbalance %v < 1", imb)
	}
	if u := ps.Utilization(); u < 0 || u > 1 {
		t.Fatalf("Utilization %v outside [0,1]", u)
	}
	// Sequential maintainers stay zero-valued.
	if s := NewInc(gen.PowerLaw(rand.New(rand.NewSource(1)), 50, 4, true), 0).ParStats(); s != (fixpoint.ParStats{}) {
		t.Fatalf("sequential maintainer has parallel stats: %+v", s)
	}
}
