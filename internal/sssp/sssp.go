// Package sssp implements single-source shortest paths: the batch fixpoint
// algorithm (Dijkstra, Fig. 1 of the paper), the deduced incremental
// algorithm IncSSSP (Fig. 5), its unit-update variant, and the dynamic
// competitors RR (Ramalingam–Reps) and DynDij (Chan–Yang style) used as
// baselines in the paper's experiments.
package sssp

import (
	"incgraph/internal/fixpoint"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// Infinity marks unreachable nodes in distance vectors.
const Infinity = graph.Infinity

// Dijkstra computes shortest distances from src with a binary-heap
// label-setting run, the paper's batch algorithm A for SSSP.
func Dijkstra(g *graph.Graph, src graph.NodeID) []int64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	que := pq.New(n, func(a, b int32) bool { return dist[a] < dist[b] })
	que.AddOrAdjust(int32(src))
	for {
		x, ok := que.Pop()
		if !ok {
			return dist
		}
		v := graph.NodeID(x)
		for _, e := range g.Out(v) {
			if alt := dist[v] + e.W; alt < dist[e.To] {
				dist[e.To] = alt
				que.AddOrAdjust(int32(e.To))
			}
		}
	}
}

// BellmanFord is the O(|V|·|E|) reference used by tests to validate every
// other implementation in this package.
func BellmanFord(g *graph.Graph, src graph.NodeID) []int64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] >= Infinity {
				continue
			}
			for _, e := range g.Out(graph.NodeID(u)) {
				if alt := dist[u] + e.W; alt < dist[e.To] {
					dist[e.To] = alt
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// Instance is the SSSP instantiation of the fixpoint model Φ: one status
// variable per node holding its distance from the source, updated by
// f_xv = min over in-neighbors u of (x_u + w(u, v)). It is contracting and
// monotonic under the natural order on distances (C2).
type Instance struct {
	G   *graph.Graph
	Src graph.NodeID
}

// NumVars returns one variable per node.
func (s *Instance) NumVars() int { return s.G.NumNodes() }

// Bottom returns the initial distance: 0 at the source, ∞ elsewhere.
func (s *Instance) Bottom(x fixpoint.Var) int64 {
	if graph.NodeID(x) == s.Src {
		return 0
	}
	return Infinity
}

// Less orders distances: smaller is closer to final.
func (s *Instance) Less(a, b int64) bool { return a < b }

// Equal reports distance equality.
func (s *Instance) Equal(a, b int64) bool { return a == b }

// Inputs yields the in-neighbors of x, the input set Y_x.
func (s *Instance) Inputs(x fixpoint.Var, yield func(fixpoint.Var)) {
	for _, e := range s.G.In(graph.NodeID(x)) {
		yield(fixpoint.Var(e.To))
	}
}

// Dependents yields the out-neighbors of x.
func (s *Instance) Dependents(x fixpoint.Var, yield func(fixpoint.Var)) {
	for _, e := range s.G.Out(graph.NodeID(x)) {
		yield(fixpoint.Var(e.To))
	}
}

// Update evaluates f_x: the minimum of in-neighbor distance plus edge
// weight.
func (s *Instance) Update(x fixpoint.Var, get func(fixpoint.Var) int64) int64 {
	v := graph.NodeID(x)
	if v == s.Src {
		return 0
	}
	best := Infinity
	for _, e := range s.G.In(v) {
		if d := get(fixpoint.Var(e.To)); d < Infinity && d+e.W < best {
			best = d + e.W
		}
	}
	return best
}

// Seeds yields the source, the only variable whose statement may be false
// initially.
func (s *Instance) Seeds(yield func(fixpoint.Var)) { yield(fixpoint.Var(s.Src)) }

// RelaxOut emits Dijkstra relaxation candidates x_v + w(v, z) to v's
// out-neighbors, the meet-form fast path of the engine.
func (s *Instance) RelaxOut(x fixpoint.Var, xv int64, emit func(fixpoint.Var, int64)) {
	if xv >= Infinity {
		return
	}
	for _, e := range s.G.Out(graph.NodeID(x)) {
		emit(fixpoint.Var(e.To), xv+e.W)
	}
}

// IncEngine is the incremental SSSP algorithm expressed through the
// generic fixpoint engine; the tuned, array-based Inc in incsssp.go is
// the paper's Fig. 5 and is what the benchmarks exercise. Both compute
// the same distances (tests cross-check them).
type IncEngine struct {
	g       *graph.Graph
	inst    *Instance
	eng     *fixpoint.Engine[int64]
	pending graph.Batch
}

// NewIncEngine computes the initial fixpoint over g and returns the
// engine-based incremental algorithm positioned at it.
func NewIncEngine(g *graph.Graph, src graph.NodeID) *IncEngine {
	inst := &Instance{G: g, Src: src}
	eng := fixpoint.New[int64](inst, fixpoint.PriorityOrder)
	eng.Run()
	return &IncEngine{g: g, inst: inst, eng: eng}
}

// Graph returns the graph the algorithm maintains.
func (i *IncEngine) Graph() *graph.Graph { return i.g }

// Dist returns the current distance vector, aliased to internal state.
func (i *IncEngine) Dist() []int64 { return i.eng.State().Val }

// Stats exposes the engine's inspection counters.
func (i *IncEngine) Stats() fixpoint.Stats { return i.eng.State().Stats }

// Apply computes G ⊕ ΔG and incrementally updates the distances, running
// the initial scope function h and resuming the batch step function. It
// returns |H⁰|, the size of the initial scope found by h.
func (i *IncEngine) Apply(b graph.Batch) int {
	i.Stage(b)
	return i.Repair()
}

// Stage materializes G ⊕ ΔG without repairing the distances, so that
// benchmarks can time Repair — the algorithm A_Δ proper — separately from
// the graph mutation that every method (including a batch re-run) needs.
func (i *IncEngine) Stage(b graph.Batch) {
	i.pending = append(i.pending, i.g.Apply(b.Net(i.g.Directed()))...)
	i.eng.Grow()
}

// Repair runs the incremental algorithm over the staged updates.
//
// Per-update anchor analysis (§4) keeps the scope tight: an inserted edge
// can only improve its head, so the head skips h's revision queue; a
// deleted edge matters only if it was tight (on a shortest path), i.e. in
// the head's anchor set — other deletions touch nothing at all.
func (i *IncEngine) Repair() int {
	applied := i.pending
	i.pending = nil
	dist := i.eng.State().Val
	idx := make(map[fixpoint.Var]bool, len(applied))
	var touched []fixpoint.Touched
	var seeds []fixpoint.Var
	addTouched := func(v graph.NodeID) {
		x := fixpoint.Var(v)
		if !idx[x] {
			idx[x] = true
			touched = append(touched, fixpoint.Touched{X: x, MaybeInfeasible: true})
		}
	}
	seen := make(map[fixpoint.Var]bool, len(applied))
	addSeed := func(v graph.NodeID) {
		x := fixpoint.Var(v)
		if !seen[x] {
			seen[x] = true
			seeds = append(seeds, x)
		}
	}
	tight := func(u, v graph.NodeID, w int64) bool {
		return int(u) < len(dist) && int(v) < len(dist) &&
			dist[u] < Infinity && dist[u]+w == dist[v]
	}
	for _, up := range applied {
		switch up.Kind {
		case graph.InsertEdge:
			// The tail's contributions strengthened: re-propagate from it.
			addSeed(up.From)
			if !i.g.Directed() {
				addSeed(up.To)
			}
		case graph.DeleteEdge:
			if tight(up.From, up.To, up.W) {
				addTouched(up.To)
			}
			if !i.g.Directed() && tight(up.To, up.From, up.W) {
				addTouched(up.From)
			}
		}
	}
	h0 := i.eng.IncrementalRunDelta(touched, seeds)
	return len(h0)
}

// IncUnit is IncSSSP_n: it processes a batch as a sequence of unit updates
// through the same incrementalization machinery, the paper's one-by-one
// variant used to quantify the value of batch handling.
type IncUnit struct{ *Inc }

// NewIncUnit builds the unit-update variant.
func NewIncUnit(g *graph.Graph, src graph.NodeID) *IncUnit {
	return &IncUnit{NewInc(g, src)}
}

// Apply processes each unit update as its own one-element batch.
func (i *IncUnit) Apply(b graph.Batch) int {
	total := 0
	for _, u := range b {
		total += i.Inc.Apply(graph.Batch{u})
	}
	return total
}
