package sssp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// paperGraph builds the graph of the paper's Fig. 2(a) as a graph.Graph.
func paperGraph() *graph.Graph {
	g := graph.New(8, true)
	g.InsertEdge(0, 2, 1)
	g.InsertEdge(2, 1, 4)
	g.InsertEdge(2, 5, 1)
	g.InsertEdge(5, 6, 1)
	g.InsertEdge(1, 4, 1)
	g.InsertEdge(4, 3, 1)
	g.InsertEdge(6, 7, 1)
	g.InsertEdge(2, 7, 4)
	g.InsertEdge(4, 6, 4)
	g.InsertEdge(3, 1, 1)
	return g
}

func TestDijkstraPaperExample(t *testing.T) {
	got := Dijkstra(paperGraph(), 0)
	want := []int64{0, 5, 1, 7, 6, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dijkstra = %v, want %v", got, want)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 2)
	d := Dijkstra(g, 0)
	if d[2] != Infinity {
		t.Fatalf("unreachable node has distance %d", d[2])
	}
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 60, 200, true)
		return reflect.DeepEqual(Dijkstra(g, 0), BellmanFord(g, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIncPaperExample(t *testing.T) {
	inc := NewInc(paperGraph(), 0)
	h0 := inc.Apply(graph.Batch{
		{Kind: graph.DeleteEdge, From: 5, To: 6},
		{Kind: graph.InsertEdge, From: 5, To: 3, W: 1},
	})
	want := []int64{0, 4, 1, 3, 5, 2, 9, 5}
	if !reflect.DeepEqual(inc.Dist(), want) {
		t.Fatalf("IncSSSP = %v, want %v", inc.Dist(), want)
	}
	// Example 4 reports H0 = {x3, x6, x7}. Our implementation feeds the
	// insertion head x3 to the resumed step function as a push seed (its
	// old value stays feasible), so h itself revises exactly {x6, x7}.
	if h0 != 2 {
		t.Fatalf("|H0| = %d, want 2 (x6, x7)", h0)
	}
}

// checkMaintainer runs the correctness equation for any maintainer that
// owns its graph: after random batches, distances must equal a fresh batch
// run on the updated graph.
func checkMaintainer(t *testing.T, name string, mk func(*graph.Graph, graph.NodeID) interface {
	Apply(graph.Batch) int
	Dist() []int64
	Graph() *graph.Graph
}) {
	t.Helper()
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%3 != 0
		g := gen.ErdosRenyi(rng, 80, 320, directed)
		m := mk(g, 0)
		for round := 0; round < 8; round++ {
			b := gen.RandomUpdates(rng, m.Graph(), 20, 0.5)
			m.Apply(b)
			want := Dijkstra(m.Graph(), 0)
			if !reflect.DeepEqual(m.Dist(), want) {
				t.Fatalf("%s seed %d round %d: dist mismatch", name, seed, round)
			}
		}
	}
}

func TestIncAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncSSSP", func(g *graph.Graph, s graph.NodeID) interface {
		Apply(graph.Batch) int
		Dist() []int64
		Graph() *graph.Graph
	} {
		return NewInc(g, s)
	})
}

func TestIncEngineAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncSSSPEngine", func(g *graph.Graph, s graph.NodeID) interface {
		Apply(graph.Batch) int
		Dist() []int64
		Graph() *graph.Graph
	} {
		return NewIncEngine(g, s)
	})
}

// The tuned Fig. 5 implementation and the generic-engine instance must
// agree distance for distance across many rounds.
func TestTunedMatchesEngine(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, 70, 280, seed%2 == 0)
		tuned := NewInc(g.Clone(), 0)
		eng := NewIncEngine(g.Clone(), 0)
		for round := 0; round < 10; round++ {
			b := gen.RandomUpdates(rng, tuned.Graph(), 15, 0.5)
			tuned.Apply(b)
			eng.Apply(b)
			if !reflect.DeepEqual(tuned.Dist(), eng.Dist()) {
				t.Fatalf("seed %d round %d: tuned != engine", seed, round)
			}
		}
	}
}

func TestIncUnitAgainstBatch(t *testing.T) {
	checkMaintainer(t, "IncSSSP_n", func(g *graph.Graph, s graph.NodeID) interface {
		Apply(graph.Batch) int
		Dist() []int64
		Graph() *graph.Graph
	} {
		return NewIncUnit(g, s)
	})
}

func TestRRAgainstBatch(t *testing.T) {
	checkMaintainer(t, "RR", func(g *graph.Graph, s graph.NodeID) interface {
		Apply(graph.Batch) int
		Dist() []int64
		Graph() *graph.Graph
	} {
		return NewRR(g, s)
	})
}

func TestDynDijAgainstBatch(t *testing.T) {
	checkMaintainer(t, "DynDij", func(g *graph.Graph, s graph.NodeID) interface {
		Apply(graph.Batch) int
		Dist() []int64
		Graph() *graph.Graph
	} {
		return NewDynDij(g, s)
	})
}

func TestIncWeightChange(t *testing.T) {
	// A weight change expressed as delete+insert of the same edge.
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 5)
	g.InsertEdge(1, 2, 5)
	inc := NewInc(g, 0)
	inc.Apply(graph.Batch{
		{Kind: graph.DeleteEdge, From: 0, To: 1},
		{Kind: graph.InsertEdge, From: 0, To: 1, W: 2},
	})
	if !reflect.DeepEqual(inc.Dist(), []int64{0, 2, 7}) {
		t.Fatalf("dist = %v", inc.Dist())
	}
	// And a worsening change.
	inc.Apply(graph.Batch{
		{Kind: graph.DeleteEdge, From: 0, To: 1},
		{Kind: graph.InsertEdge, From: 0, To: 1, W: 9},
	})
	if !reflect.DeepEqual(inc.Dist(), []int64{0, 9, 14}) {
		t.Fatalf("dist = %v", inc.Dist())
	}
}

func TestIncDisconnect(t *testing.T) {
	// Deleting the only path must push distances back to Infinity.
	g := graph.New(4, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	inc := NewInc(g, 0)
	inc.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 2}})
	want := []int64{0, 1, Infinity, Infinity}
	if !reflect.DeepEqual(inc.Dist(), want) {
		t.Fatalf("dist = %v, want %v", inc.Dist(), want)
	}
	// Reconnect through a different edge.
	inc.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 3, W: 7}})
	if inc.Dist()[3] != 7 {
		t.Fatalf("dist[3] = %d after reconnect", inc.Dist()[3])
	}
}

func TestIncVertexInsertion(t *testing.T) {
	// Vertex updates: add a node, then connect it via edge updates (§4).
	g := graph.New(2, true)
	g.InsertEdge(0, 1, 3)
	inc := NewInc(g, 0)
	v := g.AddNode(0)
	inc.Apply(graph.Batch{
		{Kind: graph.InsertEdge, From: 1, To: v, W: 2},
	})
	if got := inc.Dist()[v]; got != 5 {
		t.Fatalf("dist[new] = %d, want 5", got)
	}
}

func TestIncVertexDeletion(t *testing.T) {
	g := graph.New(4, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(0, 3, 9)
	inc := NewInc(g, 0)
	// Deleting node 2 is the dual of deleting its incident edges (§4):
	// hand the incident edges to the incremental algorithm as a batch,
	// then drop the now-isolated node.
	var b graph.Batch
	for _, e := range g.Out(graph.NodeID(2)) {
		b = append(b, graph.Update{Kind: graph.DeleteEdge, From: 2, To: e.To})
	}
	for _, e := range g.In(graph.NodeID(2)) {
		b = append(b, graph.Update{Kind: graph.DeleteEdge, From: e.To, To: 2})
	}
	inc.Apply(b)
	g.DeleteNode(2)
	if got := inc.Dist()[3]; got != 9 {
		t.Fatalf("dist[3] = %d, want 9 via direct edge", got)
	}
	if got := inc.Dist()[2]; got != Infinity {
		t.Fatalf("dist[2] = %d, want Infinity", got)
	}
}

func TestIncBoundedInspection(t *testing.T) {
	// Relative boundedness, measured: a single far-away update on a large
	// graph must inspect far less data than the batch run did.
	rng := rand.New(rand.NewSource(5))
	g := gen.PowerLaw(rng, 20000, 8, true)
	inc := NewInc(g, 0)

	b := gen.RandomUpdates(rng, g, 2, 0.5)
	before := inc.Stats().Inspected()
	inc.Apply(b)
	delta := inc.Stats().Inspected() - before
	// A batch run inspects every edge at least once: |G| is a lower bound.
	if delta*10 > int64(g.Size()) {
		t.Fatalf("unit update inspected %d vs |G| = %d: not relatively bounded", delta, g.Size())
	}

	// The engine-based variant records full batch statistics; check the
	// same property against its own batch run.
	g2 := gen.PowerLaw(rand.New(rand.NewSource(5)), 20000, 8, true)
	eng := NewIncEngine(g2, 0)
	batch := eng.Stats().Inspected()
	before = eng.Stats().Inspected()
	eng.Apply(gen.RandomUpdates(rand.New(rand.NewSource(6)), g2, 2, 0.5))
	delta = eng.Stats().Inspected() - before
	if delta*10 > batch {
		t.Fatalf("engine unit update inspected %d vs batch %d", delta, batch)
	}
}

func TestIncEmptyBatch(t *testing.T) {
	g := paperGraph()
	inc := NewInc(g, 0)
	before := append([]int64(nil), inc.Dist()...)
	if h0 := inc.Apply(nil); h0 != 0 {
		t.Fatalf("empty batch produced H0 of size %d", h0)
	}
	if !reflect.DeepEqual(before, inc.Dist()) {
		t.Fatal("empty batch changed distances")
	}
}

func TestRRUnitInsertImproves(t *testing.T) {
	g := graph.New(3, true)
	g.InsertEdge(0, 1, 10)
	g.InsertEdge(1, 2, 10)
	rr := NewRR(g, 0)
	rr.Apply(graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 2, W: 3}})
	if rr.Dist()[2] != 3 {
		t.Fatalf("dist[2] = %d", rr.Dist()[2])
	}
}

func TestDynDijSubtreeInvalidation(t *testing.T) {
	// Deleting a tree edge must repair exactly the hanging subtree.
	g := graph.New(5, true)
	g.InsertEdge(0, 1, 1)
	g.InsertEdge(1, 2, 1)
	g.InsertEdge(2, 3, 1)
	g.InsertEdge(0, 4, 1)
	g.InsertEdge(4, 3, 10)
	d := NewDynDij(g, 0)
	affected := d.Apply(graph.Batch{{Kind: graph.DeleteEdge, From: 1, To: 2}})
	if affected != 2 { // nodes 2 and 3
		t.Fatalf("affected = %d, want 2", affected)
	}
	want := []int64{0, 1, Infinity, 11, 1}
	if !reflect.DeepEqual(d.Dist(), want) {
		t.Fatalf("dist = %v, want %v", d.Dist(), want)
	}
}
