package sssp

import (
	"math/rand"
	"reflect"
	"testing"

	"incgraph/internal/graph"
)

// Zero-weight edges tie distances, so the "anchors are strictly earlier"
// shortcut degenerates: h must stay correct (ties are treated as
// later-determined, a conservative but sound choice).

func randomZeroWeightGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(n, true)
	for g.NumEdges() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		g.InsertEdge(u, v, int64(rng.Intn(3))) // weights 0..2
	}
	return g
}

func TestTunedZeroWeights(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomZeroWeightGraph(rng, 50, 180)
		inc := NewInc(g, 0)
		for round := 0; round < 8; round++ {
			var b graph.Batch
			for i := 0; i < 15; i++ {
				u := graph.NodeID(rng.Intn(50))
				v := graph.NodeID(rng.Intn(50))
				if g.HasEdge(u, v) {
					b = append(b, graph.Update{Kind: graph.DeleteEdge, From: u, To: v})
				} else {
					b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: int64(rng.Intn(3))})
				}
			}
			inc.Apply(b)
			if !reflect.DeepEqual(inc.Dist(), BellmanFord(inc.Graph(), 0)) {
				t.Fatalf("seed %d round %d: zero-weight distances diverged", seed, round)
			}
		}
	}
}

func TestEngineZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomZeroWeightGraph(rng, 40, 140)
	inc := NewIncEngine(g, 0)
	for round := 0; round < 8; round++ {
		var b graph.Batch
		for i := 0; i < 12; i++ {
			u := graph.NodeID(rng.Intn(40))
			v := graph.NodeID(rng.Intn(40))
			if g.HasEdge(u, v) {
				b = append(b, graph.Update{Kind: graph.DeleteEdge, From: u, To: v})
			} else {
				b = append(b, graph.Update{Kind: graph.InsertEdge, From: u, To: v, W: int64(rng.Intn(2))})
			}
		}
		inc.Apply(b)
		if !reflect.DeepEqual(inc.Dist(), BellmanFord(inc.Graph(), 0)) {
			t.Fatalf("round %d: engine zero-weight distances diverged", round)
		}
	}
}
