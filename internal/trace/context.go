package trace

import (
	"context"
	"encoding/hex"
	"strings"
)

// W3C trace-context (traceparent header) support, the subset the serving
// layer needs: extract the trace ID of an incoming request and hand a
// valid header back so callers can correlate their own telemetry with
// the daemon's flight recording.

// ParseTraceparent parses a W3C traceparent header value of the form
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// and returns its trace ID. It accepts any version byte except "ff"
// (per spec, future versions must keep the field layout of version 00)
// and rejects all-zero trace IDs.
func ParseTraceparent(h string) (TraceID, bool) {
	h = strings.TrimSpace(h)
	// version(2) '-' traceid(32) '-' parentid(16) '-' flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, false
	}
	ver := h[:2]
	if ver == "ff" || !isHex(ver) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return TraceID{}, false
	}
	if ver == "00" && len(h) != 55 {
		return TraceID{}, false
	}
	var t TraceID
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return TraceID{}, false
	}
	if t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseTraceID parses a bare 32-hex-digit trace ID (the middle field of
// a traceparent header), rejecting the all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	s = strings.TrimSpace(s)
	if len(s) != 32 || !isHex(s) {
		return TraceID{}, false
	}
	var t TraceID
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// FormatTraceparent renders a version-00 traceparent header value with
// the sampled flag set.
func FormatTraceparent(t TraceID, parent SpanID) string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(t.String())
	b.WriteByte('-')
	b.WriteString(parent.String())
	b.WriteString("-01")
	return b.String()
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

type ctxKey struct{}

// ContextWithID returns ctx carrying the trace ID, for handing a
// request's identity down through handler layers.
func ContextWithID(ctx context.Context, t TraceID) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// IDFromContext extracts a trace ID stored by ContextWithID.
func IDFromContext(ctx context.Context) (TraceID, bool) {
	t, ok := ctx.Value(ctxKey{}).(TraceID)
	return t, ok && !t.IsZero()
}
