package trace

// EngineTracer adapts a Recorder to the fixpoint engine's Tracer hook
// (fixpoint.Tracer — the interface is satisfied structurally, keeping
// this package free of a fixpoint dependency and vice versa). One
// EngineTracer belongs to one maintainer and is driven from its single
// apply-loop goroutine, matching the maintainers' one-writer contract;
// only the recorder it writes into is shared.
//
// Each incremental run renders as a root "inc_run" span containing an
// "h" span (the initial scope function, Fig. 4) and a "resume" span (the
// resumed step function), with one "round" instant event per propagation
// round carrying the frontier size, pops, value changes, and the
// affected-area growth — the per-round view of |AFF|.
type EngineTracer struct {
	rec   *Recorder
	track int32

	// trace is the request trace ID stamped on the next run's spans; set
	// by the serving layer before Apply, from the same goroutine that
	// drives the engine.
	trace TraceID

	runStart   int64
	scopeEnd   int64
	touched    int64
	pushSeeds  int64
	scopeSize  int64
	runs       int64
	roundCount int64
}

// Cat is the category EngineTracer events are emitted under.
const engineCat = "fixpoint"

// NewEngineTracer returns a tracer recording into rec on a fresh track
// named name (typically the algo, e.g. "cc/engine").
func NewEngineTracer(rec *Recorder, name string) *EngineTracer {
	return &EngineTracer{rec: rec, track: rec.Track(name)}
}

// NewEngineTracerOnTrack returns a tracer recording onto an existing
// track, so engine phases nest visually inside the serving layer's batch
// spans for the same algo.
func NewEngineTracerOnTrack(rec *Recorder, track int32) *EngineTracer {
	return &EngineTracer{rec: rec, track: track}
}

// SetTraceID attaches the request trace ID stamped on subsequent runs'
// spans. Call it from the goroutine that drives the engine.
func (t *EngineTracer) SetTraceID(id TraceID) { t.trace = id }

// BeginRun implements fixpoint.Tracer.
func (t *EngineTracer) BeginRun(touched, pushSeeds int) {
	t.runStart = t.rec.Now()
	t.touched = int64(touched)
	t.pushSeeds = int64(pushSeeds)
	t.runs++
	t.roundCount = 0
}

// ScopeDone implements fixpoint.Tracer: the initial scope function h
// finished, producing H⁰ of the given size.
func (t *EngineTracer) ScopeDone(hPops, hResets, scopeSize int64) {
	now := t.rec.Now()
	t.scopeEnd = now
	t.scopeSize = scopeSize
	ev := Event{
		Name: "h", Cat: engineCat, Phase: PhaseComplete,
		Track: t.track, TS: t.runStart, Dur: now - t.runStart, Trace: t.trace,
	}
	ev.AddArg("h_pops", hPops)
	ev.AddArg("h_resets", hResets)
	ev.AddArg("scope_size", scopeSize)
	ev.AddArg("touched", t.touched)
	t.rec.Emit(ev)
}

// Round implements fixpoint.Tracer: one propagation round of the resumed
// step function completed.
func (t *EngineTracer) Round(round int, frontier, pops, changes, affGrowth int64) {
	t.roundCount++
	ev := Event{
		Name: "round", Cat: engineCat, Phase: PhaseInstant,
		Track: t.track, TS: t.rec.Now(), Trace: t.trace,
	}
	ev.AddArg("round", int64(round))
	ev.AddArg("frontier", frontier)
	ev.AddArg("pops", pops)
	ev.AddArg("changes", changes)
	ev.AddArg("aff_growth", affGrowth)
	t.rec.Emit(ev)
}

// ParRound implements the engine's optional parallel extension
// (fixpoint.ParRoundTracer, satisfied structurally like Tracer): one
// partitioned propagation round completed. Emitted after the round's
// plain "round" event, it carries the worker count the frontier was
// split across, the candidates computed by the workers, the busiest
// single worker's compute time, and the round's parallel-phase wall
// time — busiest/wall is the round's critical-path utilization.
func (t *EngineTracer) ParRound(round, workers int, frontier, candidates, busiestNanos, wallNanos int64) {
	ev := Event{
		Name: "par_round", Cat: engineCat, Phase: PhaseInstant,
		Track: t.track, TS: t.rec.Now(), Trace: t.trace,
	}
	ev.AddArg("round", int64(round))
	ev.AddArg("workers", int64(workers))
	ev.AddArg("frontier", frontier)
	ev.AddArg("candidates", candidates)
	ev.AddArg("busiest_nanos", busiestNanos)
	ev.AddArg("wall_nanos", wallNanos)
	t.rec.Emit(ev)
}

// EndRun implements fixpoint.Tracer: the resumed step function drained.
func (t *EngineTracer) EndRun(pops, changes int64) {
	now := t.rec.Now()
	resume := Event{
		Name: "resume", Cat: engineCat, Phase: PhaseComplete,
		Track: t.track, TS: t.scopeEnd, Dur: now - t.scopeEnd, Trace: t.trace,
	}
	resume.AddArg("pops", pops)
	resume.AddArg("changes", changes)
	resume.AddArg("rounds", t.roundCount)
	t.rec.Emit(resume)

	root := Event{
		Name: "inc_run", Cat: engineCat, Phase: PhaseComplete,
		Track: t.track, TS: t.runStart, Dur: now - t.runStart, Trace: t.trace,
	}
	root.AddArg("run", t.runs)
	root.AddArg("touched", t.touched)
	root.AddArg("push_seeds", t.pushSeeds)
	root.AddArg("scope_size", t.scopeSize)
	t.rec.Emit(root)
}
