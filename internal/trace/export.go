package trace

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Chrome trace_event JSON export. The "JSON Object Format" emitted here
// ({"traceEvents": [...]}) loads directly in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. Timestamps and
// durations are microseconds (fractional, so nanosecond precision
// survives); each hosted algo renders as one named thread.

// jsonEvent is the wire shape of one trace_event entry.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope: thread
	Args map[string]any `json:"args,omitempty"`
}

type jsonTrace struct {
	TraceEvents     []jsonEvent       `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// otherData keys carried in every dump. The epoch is the recorder's
// wall-clock start in nanoseconds, rendered as a string because unix
// nanos exceed float64's 2^53 integer range; MergeTraceEvents uses it to
// rebase per-process timestamps onto one shared timeline.
const (
	epochKey   = "epoch_unix_ns"
	processKey = "process"
)

// exportPID is the synthetic process id every event renders under.
const exportPID = 1

// micros converts recorder nanoseconds to trace_event microseconds.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

// WriteTraceEvents dumps the retained events as Chrome trace_event JSON:
// thread-name metadata for every registered track first, then the events
// oldest-first with their integer args and, when present, the W3C trace
// ID under args.traceparent_id.
func (r *Recorder) WriteTraceEvents(w io.Writer) error {
	return r.WriteTraceEventsN(w, 0)
}

// WriteTraceEventsN is WriteTraceEvents limited to the newest n events
// (n <= 0 means everything retained) — the ?n= cap of GET /debug/trace.
func (r *Recorder) WriteTraceEventsN(w io.Writer, n int) error {
	r.mu.Lock()
	tracks := append([]string(nil), r.tracks...)
	process := r.process
	r.mu.Unlock()
	if process == "" {
		process = "incgraph"
	}
	events := r.Events()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}

	out := jsonTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]jsonEvent, 0, len(events)+len(tracks)+1),
		OtherData: map[string]string{
			epochKey:   strconv.FormatInt(r.start.UnixNano(), 10),
			processKey: process,
		},
	}
	out.TraceEvents = append(out.TraceEvents, jsonEvent{
		Name: "process_name", Ph: "M", PID: exportPID,
		Args: map[string]any{"name": process},
	})
	for i, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", PID: exportPID, TID: int32(i + 1),
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		je := jsonEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(rune(ev.Phase)),
			PID:  exportPID,
			TID:  ev.Track,
			TS:   micros(ev.TS),
		}
		if ev.Phase == PhaseComplete {
			d := micros(ev.Dur)
			je.Dur = &d
		}
		if ev.Phase == PhaseInstant {
			je.S = "t"
		}
		if ev.NArgs > 0 || !ev.Trace.IsZero() {
			je.Args = make(map[string]any, ev.NArgs+1)
			for i := 0; i < ev.NArgs; i++ {
				je.Args[ev.Args[i].Key] = ev.Args[i].Val
			}
			if !ev.Trace.IsZero() {
				je.Args["traceparent_id"] = ev.Trace.String()
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	// Viewers tolerate unsorted input, but a sorted dump diffs cleanly
	// and makes the golden test deterministic under ring wrap-around.
	sort.SliceStable(out.TraceEvents[1+len(tracks):], func(i, j int) bool {
		a, b := out.TraceEvents[1+len(tracks)+i], out.TraceEvents[1+len(tracks)+j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		// Equal starts: longer span first so children nest inside parents.
		ad, bd := 0.0, 0.0
		if a.Dur != nil {
			ad = *a.Dur
		}
		if b.Dur != nil {
			bd = *b.Dur
		}
		return ad > bd
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Handler returns an HTTP handler that dumps the flight recording, for
// mounting at GET /debug/trace. ?n= limits the dump to the newest n
// events; the recording ring bounds the response size either way.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if raw := req.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="incgraph-trace.json"`)
		r.WriteTraceEventsN(w, n)
	})
}
