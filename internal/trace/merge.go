package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Cross-process trace merging. Each cluster member dumps its own flight
// recording with a per-process clock epoch (otherData.epoch_unix_ns);
// the router fetches those dumps and merges them here into one
// Perfetto-loadable timeline — one pid per member, timestamps rebased
// onto the earliest member epoch, so a fanned-out update renders as a
// single waterfall: router split, per-shard queue/apply, replica replay.

// ProcessDump is one member's trace dump as fetched from its
// GET /debug/trace endpoint. Process, when non-empty, overrides the
// dump's self-reported process name — the scraper's topology view
// ("shard-0", "replica-0") is authoritative over what the member thinks
// it is called.
type ProcessDump struct {
	Process string
	Data    []byte
}

// MergeTraceEvents merges per-process dumps into a single Chrome
// trace_event JSON document. Dumps keep their input order: dump i
// becomes pid i+1, so a fixed scrape order yields stable process ids.
// Per-dump timestamps are rebased using each dump's epoch_unix_ns onto
// the earliest epoch present, aligning the per-process clocks. When
// filter is non-zero, only events tagged with that trace ID survive
// (metadata records always do) — the single-request waterfall view.
func MergeTraceEvents(w io.Writer, dumps []ProcessDump, filter TraceID) error {
	out := jsonTrace{DisplayTimeUnit: "ms"}
	type parsed struct {
		doc     jsonTrace
		process string
		epoch   int64
	}
	docs := make([]parsed, 0, len(dumps))
	base := int64(0)
	haveBase := false
	for i, d := range dumps {
		var p parsed
		if err := json.Unmarshal(d.Data, &p.doc); err != nil {
			return fmt.Errorf("trace: parsing dump %d: %w", i, err)
		}
		p.process = d.Process
		if p.process == "" {
			p.process = p.doc.OtherData[processKey]
		}
		if p.process == "" {
			p.process = fmt.Sprintf("process-%d", i+1)
		}
		if raw := p.doc.OtherData[epochKey]; raw != "" {
			if ns, err := strconv.ParseInt(raw, 10, 64); err == nil {
				p.epoch = ns
				if !haveBase || ns < base {
					base, haveBase = ns, true
				}
			}
		}
		docs = append(docs, p)
	}

	want := ""
	if !filter.IsZero() {
		want = filter.String()
	}
	for i, p := range docs {
		pid := i + 1
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": p.process},
		})
		// Epoch offset in microseconds; dumps without an epoch stay at
		// their local timeline (offset 0) rather than being guessed.
		var offset float64
		if haveBase && p.epoch != 0 {
			offset = float64(p.epoch-base) / 1e3
		}
		for _, ev := range p.doc.TraceEvents {
			if ev.Ph == "M" {
				// Keep thread names, drop the member's own process_name:
				// the merged document names processes by topology slot.
				if ev.Name != "thread_name" {
					continue
				}
				ev.PID = pid
				out.TraceEvents = append(out.TraceEvents, ev)
				continue
			}
			if want != "" {
				id, _ := ev.Args["traceparent_id"].(string)
				if id != want {
					continue
				}
			}
			ev.PID = pid
			ev.TS += offset
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}

	// Metadata first (ph M sorts ahead), then the shared timeline in
	// start order with longer spans first at ties, as in single-process
	// dumps — deterministic output for the golden test.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if am {
			return false // metadata keeps input order: pid, then tracks
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		ad, bd := 0.0, 0.0
		if a.Dur != nil {
			ad = *a.Dur
		}
		if b.Dur != nil {
			bd = *b.Dur
		}
		return ad > bd
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
