package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// clusterDumps builds the fixed 2-shard fan-out (plus a replica replay)
// behind the merged golden file: four recorders with hand-set epochs and
// timestamps, dumped independently and merged the way the router's
// /debug/cluster/trace endpoint does it.
func clusterDumps(t *testing.T) ([]ProcessDump, TraceID) {
	t.Helper()
	tid, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")

	dump := func(rec *Recorder) []byte {
		var b bytes.Buffer
		if err := rec.WriteTraceEvents(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	// Router: epoch is the merge base; one update span wrapping the
	// fan-out and the epoch-vector assembly.
	router := NewRecorderAt(goldenEpoch, 16)
	router.SetProcess("router")
	rt := router.Track("router")
	router.Emit(Event{Name: "split", Cat: "router", Phase: PhaseComplete, Track: rt, TS: 1000, Dur: 200, Trace: tid})
	router.Emit(Event{Name: "fanout", Cat: "router", Phase: PhaseComplete, Track: rt, TS: 1300, Dur: 5000, Trace: tid})
	router.Emit(Event{Name: "update", Cat: "router", Phase: PhaseComplete, Track: rt, TS: 900, Dur: 5600, Trace: tid})

	// Shards: epochs 2µs and 3µs after the router's, local timestamps
	// near zero — the rebase must interleave them inside the fan-out.
	shard0 := NewRecorderAt(goldenEpoch.Add(2*time.Microsecond), 16)
	s0 := shard0.Track("sssp")
	shard0.Emit(Event{Name: "apply", Cat: "serve", Phase: PhaseComplete, Track: s0, TS: 400, Dur: 2000, Trace: tid})
	shard0.Emit(Event{Name: "batch", Cat: "serve", Phase: PhaseComplete, Track: s0, TS: 100, Dur: 2500, Trace: tid})
	// An unrelated request on shard 0: must be filtered out of the
	// single-trace waterfall.
	shard0.Emit(Event{Name: "batch", Cat: "serve", Phase: PhaseComplete, Track: s0, TS: 3000, Dur: 100, Trace: NewTraceID()})

	shard1 := NewRecorderAt(goldenEpoch.Add(3*time.Microsecond), 16)
	s1 := shard1.Track("sssp")
	shard1.Emit(Event{Name: "apply", Cat: "serve", Phase: PhaseComplete, Track: s1, TS: 500, Dur: 1500, Trace: tid})
	shard1.Emit(Event{Name: "batch", Cat: "serve", Phase: PhaseComplete, Track: s1, TS: 200, Dur: 2000, Trace: tid})

	// Replica: replays shard 0's WAL record later, tagged with the same
	// trace ID the record carried.
	replica := NewRecorderAt(goldenEpoch.Add(8*time.Microsecond), 16)
	r0 := replica.Track("replication")
	replica.Emit(Event{Name: "replay", Cat: "ship", Phase: PhaseComplete, Track: r0, TS: 300, Dur: 900, Trace: tid})

	return []ProcessDump{
		{Process: "router", Data: dump(router)},
		{Process: "shard-0", Data: dump(shard0)},
		{Process: "shard-1", Data: dump(shard1)},
		{Process: "replica-0", Data: dump(replica)},
	}, tid
}

func TestMergeTraceEventsGolden(t *testing.T) {
	dumps, tid := clusterDumps(t)
	var buf bytes.Buffer
	if err := MergeTraceEvents(&buf, dumps, tid); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("merged output is not valid JSON")
	}
	const path = "testdata/golden_cluster.json"
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("merged trace differs from %s (re-run with -update to rewrite):\n%s", path, got)
	}
}

func TestMergeTraceEventsShape(t *testing.T) {
	dumps, tid := clusterDumps(t)
	var buf bytes.Buffer
	if err := MergeTraceEvents(&buf, dumps, tid); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int32          `json:"tid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	// Stable pids in scrape order, named by topology slot.
	procs := map[int]string{}
	pidEvents := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" {
			procs[ev.PID] = ev.Args["name"].(string)
			continue
		}
		if ev.Ph == "M" {
			continue
		}
		pidEvents[ev.PID]++
		if got := ev.Args["traceparent_id"]; got != tid.String() {
			t.Errorf("event %s/pid%d leaked through the trace filter: %v", ev.Name, ev.PID, got)
		}
	}
	want := map[int]string{1: "router", 2: "shard-0", 3: "shard-1", 4: "replica-0"}
	for pid, name := range want {
		if procs[pid] != name {
			t.Errorf("pid %d named %q, want %q", pid, procs[pid], name)
		}
		if pidEvents[pid] == 0 {
			t.Errorf("no events under %s", name)
		}
	}
	if pidEvents[2] != 2 {
		t.Errorf("shard-0 kept %d events, want 2 (unrelated trace filtered)", pidEvents[2])
	}

	// Rebase: shard 0's batch span starts at its local 0.1µs + 2µs epoch
	// offset = 2.1µs on the router's timeline, inside the router fan-out.
	for _, ev := range doc.TraceEvents {
		if ev.PID == 2 && ev.Name == "batch" {
			if ev.TS != 2.1 {
				t.Errorf("shard-0 batch rebased to %vµs, want 2.1", ev.TS)
			}
		}
		if ev.PID == 4 && ev.Name == "replay" {
			if ev.TS != 8.3 {
				t.Errorf("replica replay rebased to %vµs, want 8.3", ev.TS)
			}
		}
	}

	// Timeline sorted after the metadata block.
	first := 0
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			first = i
			break
		}
	}
	for i := first + 1; i < len(doc.TraceEvents); i++ {
		if doc.TraceEvents[i].TS < doc.TraceEvents[i-1].TS {
			t.Errorf("merged events unsorted at %d", i)
		}
	}
}

// Without a filter the merge keeps every event, and dumps lacking an
// epoch stay on their local timeline instead of being shifted.
func TestMergeTraceEventsNoFilter(t *testing.T) {
	dumps, _ := clusterDumps(t)
	var buf bytes.Buffer
	if err := MergeTraceEvents(&buf, dumps, TraceID{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			n++
		}
	}
	if n != 9 {
		t.Fatalf("unfiltered merge kept %d events, want 9", n)
	}

	if err := MergeTraceEvents(&buf, []ProcessDump{{Data: []byte("not json")}}, TraceID{}); err == nil {
		t.Fatal("bad dump accepted")
	}
}
