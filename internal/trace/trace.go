// Package trace is the span/event tracing layer of the serving stack: a
// low-overhead flight recorder that keeps the most recent spans and
// instant events of the fixpoint engine and the serving layer in a
// bounded ring, dumps them as Chrome trace_event JSON (loadable in
// Perfetto or chrome://tracing), and carries W3C trace-context IDs so one
// request's path — HTTP handler → submission queue → coalesced batch →
// engine phases — can be followed across layers.
//
// Where internal/obs answers "how much, in aggregate" (counters,
// histograms), this package answers "what happened, in order, for this
// batch": the scope-function phase h versus the resumed step function,
// and how each propagation round grew the affected area — the per-round
// view of the paper's |AFF| that aggregate metrics cannot show.
//
// Recording is designed for the apply hot path: an Event is a fixed-size
// value (no maps, no interfaces, integer-only args), Emit copies it into
// a preallocated ring under one short mutex, and all rendering cost
// (hex encoding, JSON) is paid at dump time, not at record time.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"incgraph/internal/obs"
)

// TraceID is a W3C trace-context trace ID: 16 bytes, all-zero meaning
// "absent".
type TraceID [16]byte

// IsZero reports whether t is the absent trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders t as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a W3C trace-context parent/span ID: 8 bytes.
type SpanID [8]byte

// String renders s as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idSeed and idCounter drive ID generation: one crypto/rand read at
// startup, then a cheap counter mix per ID. Trace IDs need uniqueness,
// not unpredictability.
var (
	idSeed    [16]byte
	idCounter atomic.Uint64
)

func init() {
	if _, err := rand.Read(idSeed[:]); err != nil {
		// Degrade to time-based uniqueness; tracing must never take the
		// process down.
		binary.LittleEndian.PutUint64(idSeed[:8], uint64(time.Now().UnixNano()))
	}
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	copy(t[:], idSeed[:])
	c := idCounter.Add(1)
	binary.LittleEndian.PutUint64(t[8:], binary.LittleEndian.Uint64(idSeed[8:])^mix(c))
	if t.IsZero() {
		t[0] = 1
	}
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.LittleEndian.PutUint64(s[:], binary.LittleEndian.Uint64(idSeed[:8])^mix(idCounter.Add(1)))
	if s == (SpanID{}) {
		s[0] = 1
	}
	return s
}

// mix is splitmix64, scattering the counter across all bits.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Event phases, following the Chrome trace_event format.
const (
	// PhaseComplete is a span with a start and a duration (ph "X").
	PhaseComplete = 'X'
	// PhaseInstant is a point event (ph "i").
	PhaseInstant = 'i'
)

// maxArgs is the fixed argument capacity of an Event; keeping it inline
// keeps Emit allocation-free.
const maxArgs = 6

// Arg is one integer annotation on an event. Keys must be constant
// strings; values are raw int64 (counts, sizes, nanoseconds).
type Arg struct {
	Key string
	Val int64
}

// Event is one flight-recorder entry: a complete span or an instant
// event on a track. It is a plain value — building and emitting one does
// not allocate.
type Event struct {
	// Name identifies the span or event kind ("h", "resume", "round", …).
	Name string
	// Cat groups events for filtering in the viewer ("fixpoint", "serve").
	Cat string
	// Phase is PhaseComplete or PhaseInstant.
	Phase byte
	// Track is the logical thread the event renders on (one per hosted
	// algo); register names with Recorder.Track.
	Track int32
	// TS is the event start in nanoseconds since the recorder's epoch.
	TS int64
	// Dur is the span duration in nanoseconds (PhaseComplete only).
	Dur int64
	// Trace correlates the event with one request's W3C trace ID; zero
	// means unattributed.
	Trace TraceID
	// Args holds the first NArgs integer annotations.
	Args  [maxArgs]Arg
	NArgs int
}

// AddArg appends an annotation, dropping it silently once the fixed
// capacity is reached (tracing must never grow the event).
func (e *Event) AddArg(key string, val int64) {
	if e.NArgs < maxArgs {
		e.Args[e.NArgs] = Arg{Key: key, Val: val}
		e.NArgs++
	}
}

// Recorder is the bounded flight recorder: the most recent events, a
// monotone clock epoch, and the track-name table. All methods are safe
// for concurrent use.
type Recorder struct {
	start time.Time
	ring  *obs.Ring[Event]

	mu      sync.Mutex
	tracks  []string // tracks[i] is the name of track i+1 (track 0 is unnamed)
	process string   // process identity stamped into exports ("" = "incgraph")
}

// NewRecorder returns a recorder retaining the last n events.
func NewRecorder(n int) *Recorder {
	return NewRecorderAt(time.Now(), n)
}

// NewRecorderAt returns a recorder with an explicit clock epoch —
// recorder timestamps are nanoseconds since start. Tests use a fixed
// epoch for deterministic exports; production code uses NewRecorder.
func NewRecorderAt(start time.Time, n int) *Recorder {
	return &Recorder{start: start, ring: obs.NewRing[Event](n)}
}

// SetProcess names the process identity this recorder belongs to
// ("router", "shard-0", "replica-0"). The name renders as the process
// name in trace viewers and keys the per-process timeline when dumps
// from several cluster members are merged with MergeTraceEvents.
func (r *Recorder) SetProcess(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.process = name
}

// Process returns the process identity, or "" if unset.
func (r *Recorder) Process() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.process
}

// Now returns the current recorder timestamp (nanoseconds since the
// recorder's epoch).
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// At converts an absolute time to a recorder timestamp.
func (r *Recorder) At(t time.Time) int64 { return int64(t.Sub(r.start)) }

// Track registers a named track and returns its id, for stamping into
// Event.Track. The name renders as the thread name in trace viewers.
func (r *Recorder) Track(name string) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks = append(r.tracks, name)
	return int32(len(r.tracks))
}

// Emit records ev. If ev.TS is zero it is stamped with the current time
// (instant events); complete spans should carry their own start.
func (r *Recorder) Emit(ev Event) {
	if ev.TS == 0 {
		ev.TS = r.Now()
	}
	r.ring.Push(ev)
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event { return r.ring.Snapshot() }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return r.ring.Len() }

// Span is an in-progress complete event. It is a value type: start one
// with Begin, annotate it, and End it to emit. A Span must not outlive
// its recorder and must be ended at most once.
type Span struct {
	rec *Recorder
	ev  Event
}

// Begin starts a span now on the given track.
func (r *Recorder) Begin(name, cat string, track int32) Span {
	return Span{rec: r, ev: Event{Name: name, Cat: cat, Phase: PhaseComplete, Track: track, TS: r.Now()}}
}

// Arg annotates the span.
func (s *Span) Arg(key string, val int64) { s.ev.AddArg(key, val) }

// SetTrace attaches a request trace ID to the span.
func (s *Span) SetTrace(t TraceID) { s.ev.Trace = t }

// End emits the span with its duration.
func (s *Span) End() {
	s.ev.Dur = s.rec.Now() - s.ev.TS
	s.rec.Emit(s.ev)
}
