package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	h := FormatTraceparent(tid, NewSpanID())
	got, ok := ParseTraceparent(h)
	if !ok || got != tid {
		t.Fatalf("ParseTraceparent(FormatTraceparent(%s)) = %s, %v", tid, got, ok)
	}
}

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		{"  " + valid + "  ", true}, // surrounding whitespace tolerated
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true}, // future version, same layout
		{"", false},
		{"garbage", false},
		{valid[:54], false}, // truncated
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},  // version ff forbidden
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},  // all-zero trace ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", false}, // version 00 is exactly 55 chars
		{"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},  // non-hex trace ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01", false},  // non-hex parent ID
		{"004bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011", false},  // missing separator
	}
	for _, c := range cases {
		id, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
		}
		if ok && id.IsZero() {
			t.Errorf("ParseTraceparent(%q) accepted a zero ID", c.in)
		}
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero trace ID %s at %d", id, i)
		}
		seen[id] = true
	}
}

func TestContextCarry(t *testing.T) {
	if _, ok := IDFromContext(context.Background()); ok {
		t.Fatal("empty context reported a trace ID")
	}
	tid := NewTraceID()
	ctx := ContextWithID(context.Background(), tid)
	got, ok := IDFromContext(ctx)
	if !ok || got != tid {
		t.Fatalf("IDFromContext = %s, %v, want %s", got, ok, tid)
	}
	if _, ok := IDFromContext(ContextWithID(context.Background(), TraceID{})); ok {
		t.Fatal("zero trace ID in context reported as present")
	}
}

func TestRecorderBounded(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Emit(Event{Name: "e", Phase: PhaseInstant, TS: int64(i + 1)})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.TS != want {
			t.Errorf("event %d TS = %d, want %d (most recent retained, oldest first)", i, ev.TS, want)
		}
	}
}

func TestSpan(t *testing.T) {
	rec := NewRecorder(8)
	track := rec.Track("t")
	sp := rec.Begin("work", "test", track)
	sp.Arg("n", 42)
	tid := NewTraceID()
	sp.SetTrace(tid)
	sp.End()

	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "work" || ev.Phase != PhaseComplete || ev.Track != track || ev.Trace != tid {
		t.Fatalf("span event %+v", ev)
	}
	if ev.Dur < 0 {
		t.Fatalf("negative duration %d", ev.Dur)
	}
	if ev.NArgs != 1 || ev.Args[0] != (Arg{Key: "n", Val: 42}) {
		t.Fatalf("span args %v", ev.Args[:ev.NArgs])
	}
}

func TestEventArgCapacity(t *testing.T) {
	var ev Event
	for i := 0; i < maxArgs+3; i++ {
		ev.AddArg("k", int64(i))
	}
	if ev.NArgs != maxArgs {
		t.Fatalf("NArgs = %d, want capped at %d", ev.NArgs, maxArgs)
	}
}

func TestEngineTracerSpans(t *testing.T) {
	// Drive the fixpoint.Tracer hooks by hand and check the emitted span
	// structure: h and resume nested under inc_run, one instant per round.
	rec := NewRecorder(64)
	et := NewEngineTracer(rec, "cc/engine")
	tid := NewTraceID()
	et.SetTraceID(tid)

	et.BeginRun(2, 1)
	et.ScopeDone(5, 2, 3)
	et.Round(1, 3, 3, 2, 2)
	et.Round(2, 2, 2, 0, 0)
	et.EndRun(5, 2)

	evs := rec.Events()
	names := make([]string, len(evs))
	for i, ev := range evs {
		names[i] = ev.Name
		if ev.Trace != tid {
			t.Errorf("event %s missing trace ID", ev.Name)
		}
	}
	want := []string{"h", "round", "round", "resume", "inc_run"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("event names %v, want %v", names, want)
	}
	h, resume, root := evs[0], evs[3], evs[4]
	if h.TS != root.TS {
		t.Errorf("h starts at %d, inc_run at %d; want same start", h.TS, root.TS)
	}
	if resume.TS < h.TS+h.Dur {
		t.Errorf("resume starts at %d, before h ends at %d", resume.TS, h.TS+h.Dur)
	}
	if end := root.TS + root.Dur; resume.TS+resume.Dur != end {
		t.Errorf("resume ends at %d, inc_run at %d; want same end", resume.TS+resume.Dur, end)
	}
	argMap := func(ev Event) map[string]int64 {
		m := map[string]int64{}
		for i := 0; i < ev.NArgs; i++ {
			m[ev.Args[i].Key] = ev.Args[i].Val
		}
		return m
	}
	if m := argMap(h); m["h_pops"] != 5 || m["h_resets"] != 2 || m["scope_size"] != 3 || m["touched"] != 2 {
		t.Errorf("h args %v", m)
	}
	if m := argMap(resume); m["pops"] != 5 || m["changes"] != 2 || m["rounds"] != 2 {
		t.Errorf("resume args %v", m)
	}
	if m := argMap(root); m["touched"] != 2 || m["push_seeds"] != 1 || m["scope_size"] != 3 || m["run"] != 1 {
		t.Errorf("inc_run args %v", m)
	}
	if m := argMap(evs[1]); m["round"] != 1 || m["frontier"] != 3 || m["aff_growth"] != 2 {
		t.Errorf("round 1 args %v", m)
	}
}

// goldenEpoch is the fixed wall-clock epoch of golden recorders, so the
// exported otherData.epoch_unix_ns is deterministic.
var goldenEpoch = time.Unix(1700000000, 0)

// goldenRecorder builds the fixed recording behind the golden file:
// hand-set timestamps, one track, one run's worth of spans.
func goldenRecorder() *Recorder {
	rec := NewRecorderAt(goldenEpoch, 16)
	track := rec.Track("cc")
	tid, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")

	h := Event{Name: "h", Cat: "fixpoint", Phase: PhaseComplete, Track: track, TS: 1000, Dur: 500, Trace: tid}
	h.AddArg("h_pops", 3)
	h.AddArg("scope_size", 2)
	rec.Emit(h)

	round := Event{Name: "round", Cat: "fixpoint", Phase: PhaseInstant, Track: track, TS: 1600, Trace: tid}
	round.AddArg("round", 1)
	round.AddArg("frontier", 2)
	rec.Emit(round)

	resume := Event{Name: "resume", Cat: "fixpoint", Phase: PhaseComplete, Track: track, TS: 1500, Dur: 250, Trace: tid}
	resume.AddArg("pops", 2)
	rec.Emit(resume)

	rec.Emit(Event{Name: "inc_run", Cat: "fixpoint", Phase: PhaseComplete, Track: track, TS: 1000, Dur: 750, Trace: tid})
	return rec
}

func TestWriteTraceEventsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("output is not valid JSON")
	}
	const path = "testdata/golden.json"
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("trace_event output differs from %s (re-run with -update to rewrite):\n%s", path, got)
	}
}

func TestWriteTraceEventsShape(t *testing.T) {
	// Structural checks a viewer relies on, independent of the exact
	// golden bytes: the decoded document has the trace_event envelope,
	// metadata rows, sorted events, and microsecond conversion.
	var buf bytes.Buffer
	if err := goldenRecorder().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if doc.TraceEvents[0].Name != "process_name" || doc.TraceEvents[1].Name != "thread_name" {
		t.Fatalf("missing metadata header rows")
	}
	rest := doc.TraceEvents[2:]
	for i := 1; i < len(rest); i++ {
		if rest[i].TS < rest[i-1].TS {
			t.Errorf("events not sorted by ts: %v after %v", rest[i].TS, rest[i-1].TS)
		}
	}
	for _, ev := range rest {
		if ev.Name == "h" && ev.TS != 1.0 {
			t.Errorf("h ts = %v µs, want 1.0 (1000ns)", ev.TS)
		}
		if ev.Args["traceparent_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("%s missing traceparent_id arg: %v", ev.Name, ev.Args)
		}
	}
}
