package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint is a consistent cut of the serving state: for every hosted
// algorithm its graph and an opaque state blob (the maintainer's
// auxiliary structure — timestamps, anchors, intervals — serialized by
// internal/serve). Epoch is the number of batches the cut has absorbed;
// ReplayFrom is the WAL segment sequence at which records NOT covered by
// this checkpoint begin, so recovery is: restore the checkpoint, then
// replay segments >= ReplayFrom.
type Checkpoint struct {
	Epoch      uint64
	ReplayFrom uint64
	Algos      []AlgoState
}

// AlgoState is one algorithm's persisted slice of a checkpoint.
type AlgoState struct {
	Name  string
	Graph []byte // graph.WriteBinary encoding of the host's graph
	State []byte // maintainer state blob (gob, see internal/serve)
}

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	ckptMagic  = "IGK1"
	// maxCkptBlob bounds any single length field read from a checkpoint so
	// a corrupt file cannot force a giant allocation.
	maxCkptBlob = 1 << 32
)

func ckptName(seq uint64) string { return fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix) }

func parseCkptName(name string) (uint64, bool) {
	if len(name) != len(ckptPrefix)+16+len(ckptSuffix) ||
		name[:len(ckptPrefix)] != ckptPrefix || name[len(name)-len(ckptSuffix):] != ckptSuffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(ckptPrefix) : len(ckptPrefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// encode serializes the checkpoint: magic, epoch, replay-from, the algo
// states, and one trailing CRC32C over everything before it. A single
// whole-file checksum is enough because a checkpoint is written once and
// read once, atomically.
func (c *Checkpoint) encode() []byte {
	buf := []byte(ckptMagic)
	buf = binary.AppendUvarint(buf, c.Epoch)
	buf = binary.AppendUvarint(buf, c.ReplayFrom)
	buf = binary.AppendUvarint(buf, uint64(len(c.Algos)))
	for _, a := range c.Algos {
		buf = binary.AppendUvarint(buf, uint64(len(a.Name)))
		buf = append(buf, a.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(a.Graph)))
		buf = append(buf, a.Graph...)
		buf = binary.AppendUvarint(buf, uint64(len(a.State)))
		buf = append(buf, a.State...)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf, castagnoli))
	return append(buf, crc[:]...)
}

// decodeCheckpoint parses and verifies an encoded checkpoint. Corruption
// anywhere — including a truncated write — yields an error, never a
// panic.
func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(data))
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	if string(body[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	body = body[len(ckptMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated checkpoint varint")
		}
		body = body[n:]
		return v, nil
	}
	bytesField := func() ([]byte, error) {
		ln, err := next()
		if err != nil {
			return nil, err
		}
		if ln > maxCkptBlob || ln > uint64(len(body)) {
			return nil, fmt.Errorf("wal: checkpoint field length %d exceeds remaining %d bytes", ln, len(body))
		}
		f := body[:ln]
		body = body[ln:]
		return f, nil
	}
	c := &Checkpoint{}
	var err error
	if c.Epoch, err = next(); err != nil {
		return nil, err
	}
	if c.ReplayFrom, err = next(); err != nil {
		return nil, err
	}
	nalgos, err := next()
	if err != nil {
		return nil, err
	}
	if nalgos > uint64(len(body)) {
		return nil, fmt.Errorf("wal: checkpoint claims %d algos in %d bytes", nalgos, len(body))
	}
	for i := uint64(0); i < nalgos; i++ {
		var a AlgoState
		name, err := bytesField()
		if err != nil {
			return nil, err
		}
		a.Name = string(name)
		if a.Graph, err = bytesField(); err != nil {
			return nil, err
		}
		if a.State, err = bytesField(); err != nil {
			return nil, err
		}
		// Copy out of the shared backing array so callers can hold the
		// blobs without pinning the whole file.
		a.Graph = append([]byte(nil), a.Graph...)
		a.State = append([]byte(nil), a.State...)
		c.Algos = append(c.Algos, a)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after checkpoint", len(body))
	}
	return c, nil
}

// WriteCheckpoint atomically persists c into dir, named by its epoch:
// write to a temp file, fsync it, rename into place, fsync the
// directory. A crash at any point leaves either the complete new
// checkpoint or no trace of it — never a half-written one under the
// final name.
func WriteCheckpoint(dir string, c *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(dir, ckptName(c.Epoch))
	tmp, err := os.CreateTemp(dir, ckptPrefix+"tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(c.encode()); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // make the rename itself durable
		d.Close()
	}
	return final, nil
}

// checkpointSeqs lists checkpoint epochs present in dir, ascending.
func checkpointSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// LatestCheckpoint loads the newest valid checkpoint in dir, scanning
// backwards past any corrupt or torn ones (a crash during checkpointing
// must not take recovery down with it). It returns (nil, nil) when no
// valid checkpoint exists — recovery then replays the WAL from the
// beginning.
func LatestCheckpoint(dir string) (*Checkpoint, error) {
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, ckptName(seqs[i])))
		if err != nil {
			return nil, err
		}
		c, err := decodeCheckpoint(data)
		if err != nil {
			continue // corrupt: fall back to the previous checkpoint
		}
		return c, nil
	}
	return nil, nil
}

// PruneCheckpoints removes all but the newest keep checkpoints. Keeping
// at least two means a checkpoint corrupted in place still leaves a
// recovery path.
func PruneCheckpoints(dir string, keep int) error {
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	for len(seqs) > keep {
		if err := os.Remove(filepath.Join(dir, ckptName(seqs[0]))); err != nil {
			return err
		}
		seqs = seqs[1:]
	}
	return nil
}
