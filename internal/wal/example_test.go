// Godoc example for the durability cycle: append acknowledged batches,
// "crash", and replay the durable prefix on recovery. Runs under go test.
package wal_test

import (
	"fmt"
	"os"

	"incgraph/internal/graph"
	"incgraph/internal/wal"
)

func Example_recovery() {
	dir, err := os.MkdirTemp("", "wal-example")
	if err != nil {
		fmt.Println("tmpdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	// A serving process appends every accepted update batch before
	// acknowledging it. SyncAlways means an acknowledged batch survives
	// kill -9.
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	batches := []graph.Batch{
		{{Kind: graph.InsertEdge, From: 0, To: 1, W: 4}},
		{{Kind: graph.InsertEdge, From: 1, To: 2, W: 4}, {Kind: graph.DeleteEdge, From: 0, To: 1, W: 4}},
	}
	for _, b := range batches {
		if err := log.Append(wal.Record{Algo: "sssp", Batch: b}); err != nil {
			fmt.Println("append:", err)
			return
		}
	}
	log.Close() // the "crash": nothing beyond the log survives

	// On restart, recovery replays every durable record in order —
	// through the incremental Apply path — rebuilding the maintained
	// state the process lost. (With checkpoints, replay starts from the
	// checkpoint's segment instead of 1.)
	n, err := wal.Replay(dir, 1, func(r wal.Record) error {
		fmt.Printf("replay %s: %d updates\n", r.Algo, r.Batch.Size())
		return nil
	})
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	fmt.Println("records recovered:", n)
	// Output:
	// replay sssp: 1 updates
	// replay sssp: 2 updates
	// records recovered: 2
}
