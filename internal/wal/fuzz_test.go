package wal

import (
	"testing"

	"incgraph/internal/graph"
)

// FuzzDecodeRecord hammers the WAL record decoder with arbitrary bytes —
// including torn-write corpora: valid encodings truncated and corrupted
// at every interesting offset. The decoder must never panic and a
// successful decode must re-encode losslessly.
func FuzzDecodeRecord(f *testing.F) {
	seedRecords := []Record{
		{},
		{Algo: "sssp"},
		{Batch: graph.Batch{{Kind: graph.InsertEdge, From: 0, To: 1, W: 5}}},
		{Algo: "bc", Batch: graph.Batch{
			{Kind: graph.InsertEdge, From: 3, To: 9, W: -2},
			{Kind: graph.DeleteEdge, From: 9, To: 3},
		}},
	}
	for _, r := range seedRecords {
		enc := EncodeRecord(nil, r)
		f.Add(enc)
		// Torn-write corpora: every truncation prefix of a valid record.
		for cut := 0; cut < len(enc); cut++ {
			f.Add(append([]byte(nil), enc[:cut]...))
		}
		// Single-byte corruptions at a few offsets.
		for _, at := range []int{0, len(enc) / 2, len(enc) - 1} {
			if at >= 0 && at < len(enc) {
				mut := append([]byte(nil), enc...)
				mut[at] ^= 0xff
				f.Add(mut)
			}
		}
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc := EncodeRecord(nil, r)
		r2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if r2.Algo != r.Algo || len(r2.Batch) != len(r.Batch) {
			t.Fatalf("lossy round trip: %+v vs %+v", r, r2)
		}
	})
}
