package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
)

// This file is the log-shipping surface of the WAL: a primary exposes
// its segments (and latest checkpoint) over HTTP through StreamHandler,
// and a follower replays its local, continuously-growing copy through a
// Tail — an incremental frame scanner that remembers its position and
// emits each record exactly once as bytes arrive. Together they turn the
// recovery substrate of PR 4 into a replication substrate: a warm
// replica is just a process whose data directory is a shipped copy of
// the primary's, replaying the tail forever instead of once at startup.

// SegmentName returns the on-disk file name of segment seq — the name a
// follower must store shipped bytes under so recovery and Tail find
// them.
func SegmentName(seq uint64) string { return segName(seq) }

// CheckpointName returns the on-disk file name of the checkpoint with
// the given sequence number.
func CheckpointName(seq uint64) string { return ckptName(seq) }

// SegmentInfo describes one shippable segment in a stream listing.
type SegmentInfo struct {
	// Seq is the segment's sequence number.
	Seq uint64 `json:"seq"`
	// Size is the segment file's current byte length. For the active
	// segment this grows between listings; for sealed segments it is
	// final.
	Size int64 `json:"size"`
	// Sealed reports whether the segment has been rotated away from:
	// its bytes are immutable and may be shipped to EOF.
	Sealed bool `json:"sealed"`
}

// StreamListing is the JSON body of GET /segments: the shippable state
// of a log directory at one instant.
type StreamListing struct {
	// Active is the sequence number of the segment currently accepting
	// appends.
	Active uint64 `json:"active"`
	// Segments lists every on-disk segment, ascending.
	Segments []SegmentInfo `json:"segments"`
	// CheckpointSeq is the sequence number of the newest checkpoint
	// file, 0 when none exists. Followers fetch it once at bootstrap so
	// they can start from segment Checkpoint.ReplayFrom instead of
	// needing the (possibly pruned) genesis segments.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
}

// streamChunk caps one segment-fetch response so a follower paging
// through a large segment cannot hold a handler for unbounded time.
const streamChunk = 4 << 20

// StreamHandler serves the log directory for replication:
//
//	GET /segments             StreamListing (JSON)
//	GET /segment/{seq}?off=N  raw segment bytes from offset N (≤ 4 MiB)
//	GET /checkpoint           newest checkpoint file bytes
//
// Mount it under a prefix (e.g. /wal/) with http.StripPrefix. The
// handler reads files the same way recovery does, so a follower sees
// exactly the durable byte stream; reads race appends harmlessly — a
// torn tail frame on the follower simply waits for the next fetch to
// complete it.
func (l *Log) StreamHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /segments", func(w http.ResponseWriter, r *http.Request) {
		segs, err := Segments(l.dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		active := l.ActiveSeq()
		lst := StreamListing{Active: active}
		for _, seq := range segs {
			fi, err := os.Stat(filepath.Join(l.dir, segName(seq)))
			if err != nil {
				continue // pruned between listing and stat
			}
			lst.Segments = append(lst.Segments, SegmentInfo{Seq: seq, Size: fi.Size(), Sealed: seq < active})
		}
		if seqs, err := checkpointSeqs(l.dir); err == nil && len(seqs) > 0 {
			lst.CheckpointSeq = seqs[len(seqs)-1]
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lst)
	})
	mux.HandleFunc("GET /segment/{seq}", func(w http.ResponseWriter, r *http.Request) {
		seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
		if err != nil {
			http.Error(w, "bad segment seq", http.StatusBadRequest)
			return
		}
		var off int64
		if s := r.URL.Query().Get("off"); s != "" {
			if off, err = strconv.ParseInt(s, 10, 64); err != nil || off < 0 {
				http.Error(w, "bad off", http.StatusBadRequest)
				return
			}
		}
		f, err := os.Open(filepath.Join(l.dir, segName(seq)))
		if err != nil {
			http.Error(w, "no such segment", http.StatusNotFound)
			return
		}
		defer f.Close()
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		io.Copy(w, io.LimitReader(f, streamChunk))
	})
	mux.HandleFunc("GET /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		seqs, err := checkpointSeqs(l.dir)
		if err != nil || len(seqs) == 0 {
			http.Error(w, "no checkpoint", http.StatusNotFound)
			return
		}
		f, err := os.Open(filepath.Join(l.dir, ckptName(seqs[len(seqs)-1])))
		if err != nil {
			http.Error(w, "no checkpoint", http.StatusNotFound)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		io.Copy(w, f)
	})
	return mux
}

// Tail is a follower's incremental reader over a (growing) log
// directory: it remembers the segment and byte offset it has consumed
// up to and, on every Advance, decodes any newly complete, CRC-valid
// frames past that position. A frame that is torn *and* followed by a
// later segment is the rotation signature — the primary sealed the
// segment mid-frame never happens (frames are written whole), so a torn
// tail with a successor means the local copy of the sealed segment is
// still short; Tail waits rather than skipping, because shipping is
// ordered per segment and the bytes will arrive.
type Tail struct {
	dir string
	// Seq and Off are the consume position: the next frame is read from
	// segment Seq at byte offset Off.
	Seq uint64
	Off int64
	// Records counts frames emitted over the Tail's lifetime.
	Records uint64
}

// NewTail returns a tail positioned at the start of segment seq (0
// means the lowest segment present at the first Advance).
func NewTail(dir string, seq uint64) *Tail { return &Tail{dir: dir, Seq: seq} }

// Advance scans forward from the current position, calling fn for every
// whole, CRC-valid frame, and stops at the first incomplete frame (more
// bytes may arrive) or at the end of the newest segment. It returns the
// number of records emitted. A fn error aborts the scan with the
// position already advanced past the consumed frame.
func (t *Tail) Advance(fn func(Record) error) (int, error) {
	segs, err := Segments(t.dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	if t.Seq == 0 {
		t.Seq = segs[0]
	}
	emitted := 0
	for {
		partial, err := t.scanFrom(fn, &emitted)
		if err != nil {
			return emitted, err
		}
		// Hop to the next segment only on clean end-of-segment with a
		// successor present locally: an incomplete frame means the rest
		// of this segment's bytes are still being shipped (shipping is
		// ordered per segment), so wait rather than skip.
		next, ok := nextSegment(segs, t.Seq)
		if partial || !ok {
			return emitted, nil
		}
		t.Seq, t.Off = next, 0
	}
}

// scanFrom decodes complete frames in the current segment from t.Off,
// advancing the position past each. partial reports whether the scan
// stopped on an incomplete frame (as opposed to clean EOF).
func (t *Tail) scanFrom(fn func(Record) error, emitted *int) (partial bool, err error) {
	f, err := os.Open(filepath.Join(t.dir, segName(t.Seq)))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // not shipped yet
		}
		return false, err
	}
	defer f.Close()
	if _, err := f.Seek(t.Off, io.SeekStart); err != nil {
		return false, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err == io.ErrUnexpectedEOF, nil
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if plen > maxFramePayload {
			return false, fmt.Errorf("wal: tail: frame at %s:%d claims %d bytes", segName(t.Seq), t.Off, plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return true, nil // incomplete frame: wait for more bytes
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return false, fmt.Errorf("wal: tail: CRC mismatch at %s:%d", segName(t.Seq), t.Off)
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			return false, fmt.Errorf("wal: tail: %s:%d: %w", segName(t.Seq), t.Off, derr)
		}
		t.Off += int64(frameHeader) + int64(plen)
		t.Records++
		*emitted++
		if fn != nil {
			if err := fn(rec); err != nil {
				return false, err
			}
		}
	}
}

// nextSegment returns the smallest listed segment strictly above seq.
func nextSegment(segs []uint64, seq uint64) (uint64, bool) {
	for _, s := range segs {
		if s > seq {
			return s, true
		}
	}
	return 0, false
}
