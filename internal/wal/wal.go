// Package wal is the durability layer of the serving stack: an
// append-only, CRC32C-framed, fsync-batched write-ahead log of update
// batches, plus graph+state checkpoints (checkpoint.go). Together they
// make the maintained incremental state recoverable: on restart, the
// latest checkpoint restores the graph and each algorithm's auxiliary
// state, and replaying the log tail re-applies every update the
// checkpoint had not yet absorbed. Theorem 1's correctness guarantee is
// only as good as the state it is maintained over; this package is what
// keeps that state from silently diverging across crashes.
//
// Layout of a data dir:
//
//	wal-0000000000000001.seg    frame stream, rotated by size
//	wal-0000000000000002.seg    the active segment
//	checkpoint-00000000000012c8.ckpt
//
// Each frame is [len u32][crc32c u32][payload]; the payload is one
// Record (an algo routing tag plus a binary-encoded batch). Appends are
// group-committed: concurrent appenders coalesce onto one fsync, so a
// burst of small updates pays one disk flush, not one each. On open, a
// torn tail frame — the signature of a crash mid-write — is truncated
// away; everything before it is the durable prefix.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"incgraph/internal/graph"
)

// SyncPolicy selects when appends reach the disk platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns (group-committed): an
	// acknowledged update survives kill -9. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every Options.Interval;
	// a crash loses at most one interval of acknowledged updates.
	SyncInterval
	// SyncNever leaves flushing to the OS — fastest, weakest.
	SyncNever
)

// String returns the policy's flag spelling ("always", "interval", "never").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

// Record is one logged unit: an update batch plus the algo it was
// targeted at ("" = broadcast to every hosted maintainer, the common
// case).
type Record struct {
	Algo  string
	Batch graph.Batch
	// Trace is the W3C trace ID of the request that logged this record
	// (all-zero = untraced). It travels with shipped segments so a
	// replica's replay spans join the original request's timeline.
	Trace [16]byte
	// Nanos is the wall-clock append time in unix nanoseconds (0 =
	// unstamped legacy record). Followers subtract it from their own
	// clock to report seconds-behind-primary.
	Nanos int64
}

// recordTailLen is the fixed optional suffix carrying Trace and Nanos.
const recordTailLen = 16 + 8

// Options tune a log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 64 MiB.
	SegmentBytes int64
	// Policy is the fsync policy; Interval applies under SyncInterval
	// (default 5ms).
	Policy   SyncPolicy
	Interval time.Duration
	// SyncHook, when set, is consulted before every fsync; returning true
	// skips it. This is the fault-injection point internal/serve/faults
	// drives to simulate disks that lie — production leaves it nil.
	SyncHook func() bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	return o
}

// castagnoli is the CRC32C table; CRC32C has hardware support on both
// amd64 and arm64, so framing costs well under a ns/byte.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxFramePayload bounds a frame read so a corrupted length field cannot
// force a giant allocation.
const maxFramePayload = 256 << 20

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// frameHeader is the per-frame overhead: u32 payload length + u32 CRC32C.
	frameHeader = 8
)

func segName(seq uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(segPrefix) : len(segPrefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// Log is an open write-ahead log: one active segment accepting appends,
// older segments immutable.
type Log struct {
	dir string
	opt Options

	mu   sync.Mutex // serializes writes and rotation
	f    *os.File
	seq  uint64 // active segment sequence number
	size int64
	// appendSeq counts appends; syncedSeq is the highest append known to
	// be on disk. Group commit: an appender needing durability syncs up
	// to the CURRENT appendSeq, so every waiter that queued behind one
	// fsync is covered by it.
	appendSeq uint64

	syncMu    sync.Mutex // serializes fsyncs; never held with mu
	syncedSeq uint64

	dirty  chan struct{} // wakes the interval flusher
	quit   chan struct{}
	done   chan struct{}
	closed bool

	// Appends and Syncs count operations for the obs layer (read with
	// Stats; plain fields guarded by the mutexes above).
	appends uint64
	syncs   uint64
}

// Stats reports operation counts for metrics.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	appends = l.appends
	l.mu.Unlock()
	l.syncMu.Lock()
	syncs = l.syncs
	l.syncMu.Unlock()
	return
}

// Open opens (or creates) the log in dir. The last existing segment is
// scanned and any torn tail frame is truncated away before appends
// resume on it; a fresh dir starts at segment 1.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, seq: 1,
		dirty: make(chan struct{}, 1), quit: make(chan struct{}), done: make(chan struct{})}
	if len(segs) > 0 {
		l.seq = segs[len(segs)-1]
		good, _, err := scanSegment(filepath.Join(dir, segName(l.seq)), nil)
		if err != nil {
			return nil, fmt.Errorf("wal: scanning active segment %d: %w", l.seq, err)
		}
		if err := os.Truncate(filepath.Join(dir, segName(l.seq)), good); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of segment %d: %w", l.seq, err)
		}
		l.size = good
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(l.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if opt.Policy == SyncInterval {
		go l.flusher()
	} else {
		close(l.done)
	}
	return l, nil
}

// flusher is the SyncInterval background goroutine: it wakes on dirt,
// debounces for Interval, and issues one fsync for everything appended
// meanwhile.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTimer(l.opt.Interval)
	if !t.Stop() {
		<-t.C
	}
	for {
		select {
		case <-l.quit:
			l.syncNow()
			return
		case <-l.dirty:
			t.Reset(l.opt.Interval)
			select {
			case <-t.C:
				l.syncNow()
			case <-l.quit:
				if !t.Stop() {
					<-t.C
				}
				l.syncNow()
				return
			}
		}
	}
}

// EncodeRecord appends the binary encoding of r's payload (not the
// frame) to dst. Untraced, unstamped records keep the legacy layout
// (algo tag + batch); a record carrying a trace ID or timestamp gains a
// fixed 24-byte tail, which legacy decoders never see because the two
// layouts are distinguished by payload length.
func EncodeRecord(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Algo)))
	dst = append(dst, r.Algo...)
	dst = graph.AppendBatchBinary(dst, r.Batch)
	if r.Trace != ([16]byte{}) || r.Nanos != 0 {
		dst = append(dst, r.Trace[:]...)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Nanos))
	}
	return dst
}

// DecodeRecord parses a record payload. Corrupted input yields an error,
// never a panic. Both layouts decode: legacy records (nothing after the
// batch) yield a zero Trace/Nanos, extended records carry them in a
// fixed-size tail.
func DecodeRecord(data []byte) (Record, error) {
	alen, n := binary.Uvarint(data)
	if n <= 0 || alen > uint64(len(data)-n) || alen > 256 {
		return Record{}, fmt.Errorf("wal: bad algo tag")
	}
	algo := string(data[n : n+int(alen)])
	b, rest, err := graph.DecodeBatchBinary(data[n+int(alen):])
	if err != nil {
		return Record{}, err
	}
	rec := Record{Algo: algo, Batch: b}
	switch len(rest) {
	case 0:
	case recordTailLen:
		copy(rec.Trace[:], rest[:16])
		rec.Nanos = int64(binary.LittleEndian.Uint64(rest[16:]))
	default:
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(rest))
	}
	return rec, nil
}

// Append frames and writes one record, rotating the segment if it grew
// past the size budget, and — under SyncAlways — returns only once the
// record is on disk. Concurrent appenders group-commit: whoever reaches
// the fsync first flushes for everyone queued behind it.
func (l *Log) Append(r Record) error {
	payload := EncodeRecord(nil, r)
	frame := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	if l.size > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.mu.Unlock()
		return err
	}
	l.size += int64(len(frame))
	l.appends++
	l.appendSeq++
	seq := l.appendSeq
	f := l.f
	l.mu.Unlock()

	switch l.opt.Policy {
	case SyncAlways:
		return l.syncTo(f, seq)
	case SyncInterval:
		select {
		case l.dirty <- struct{}{}:
		default:
		}
	}
	return nil
}

var errClosed = errors.New("wal: log closed")

// syncTo ensures append ordinal seq is on disk, sharing fsyncs between
// concurrent callers (group commit).
func (l *Log) syncTo(f *os.File, seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedSeq >= seq {
		return nil // somebody else's fsync covered us
	}
	// Read the latest append ordinal: this fsync will cover everything
	// written so far, including appends queued after ours.
	l.mu.Lock()
	latest := l.appendSeq
	l.mu.Unlock()
	if l.opt.SyncHook != nil && l.opt.SyncHook() {
		// Injected fault: pretend the sync happened. The acknowledgement
		// is now a lie, exactly like a disk with a volatile write cache.
		l.syncedSeq = latest
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	l.syncs++
	l.syncedSeq = latest
	return nil
}

// syncNow flushes the active segment (interval flusher and Close path).
func (l *Log) syncNow() {
	l.mu.Lock()
	f, latest := l.f, l.appendSeq
	l.mu.Unlock()
	if f != nil {
		l.syncTo(f, latest)
	}
}

// Sync forces everything appended so far onto disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	f, latest := l.f, l.appendSeq
	closed := l.closed
	l.mu.Unlock()
	if closed || f == nil {
		return errClosed
	}
	return l.syncTo(f, latest)
}

// Rotate closes the active segment and starts a fresh one, returning the
// new segment's sequence number — the checkpoint's replay-from handle:
// records at or after it are not covered by a checkpoint taken at the
// moment of rotation.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seq, nil
}

func (l *Log) rotateLocked() error {
	if l.opt.SyncHook == nil || !l.opt.SyncHook() {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seq++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size = f, 0
	return nil
}

// ActiveSeq returns the active segment's sequence number.
func (l *Log) ActiveSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// RemoveBefore deletes segments with sequence numbers strictly below
// seq — those fully covered by a checkpoint.
func (l *Log) RemoveBefore(seq uint64) error {
	segs, err := Segments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seq {
			if err := os.Remove(filepath.Join(l.dir, segName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done // interval flusher does a final sync; closed immediately otherwise
	if l.opt.Policy != SyncInterval {
		l.syncNow()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Segments lists the segment sequence numbers present in dir, ascending.
func Segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment reads frames from a segment file, calling fn (when non-nil)
// for each decodable record. It returns the byte offset of the end of the
// last whole, CRC-valid frame — the durable prefix — and the record
// count. A torn or corrupt tail is not an error; it is where the prefix
// ends.
func scanSegment(path string, fn func(Record) error) (good int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var off int64
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, n, nil // clean EOF or torn header: prefix ends here
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if plen > maxFramePayload {
			return off, n, nil // corrupt length: treat as torn
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, n, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return off, n, nil // corrupt frame
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			return off, n, nil // framed garbage: stop the prefix here
		}
		off += int64(frameHeader) + int64(plen)
		n++
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, n, err
			}
		}
	}
}

// Replay streams every record in segments with sequence number >= from,
// in order, to fn. Replay stops at the first torn or corrupt frame: if
// that happens in the final segment it is the expected crash signature
// and replay ends cleanly; anywhere earlier it means later segments hold
// records beyond a corruption hole, and Replay returns both the count
// replayed so far and an error so the operator knows the durable prefix
// ended early.
func Replay(dir string, from uint64, fn func(Record) error) (int, error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, seq := range segs {
		if seq < from {
			continue
		}
		path := filepath.Join(dir, segName(seq))
		fi, err := os.Stat(path)
		if err != nil {
			return total, err
		}
		good, n, err := scanSegment(path, fn)
		total += n
		if err != nil {
			return total, fmt.Errorf("wal: replaying segment %d: %w", seq, err)
		}
		if good < fi.Size() && i != len(segs)-1 {
			return total, fmt.Errorf("wal: segment %d corrupt at offset %d with %d later segment(s): durable prefix truncated", seq, good, len(segs)-1-i)
		}
		if good < fi.Size() {
			break // torn tail of the final segment: the crash point
		}
	}
	return total, nil
}
