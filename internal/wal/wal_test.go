package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"incgraph/internal/graph"
)

func mkBatch(n int) graph.Batch {
	var b graph.Batch
	for i := 0; i < n; i++ {
		b = append(b, graph.Update{Kind: graph.InsertEdge, From: graph.NodeID(i), To: graph.NodeID(i + 1), W: int64(i)})
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Algo: "", Batch: mkBatch(3)},
		{Algo: "sssp", Batch: nil},
		{Algo: "bc", Batch: mkBatch(100)},
	}
	for _, r := range recs {
		enc := EncodeRecord(nil, r)
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Algo != r.Algo || len(got.Batch) != len(r.Batch) {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
		for i := range r.Batch {
			if got.Batch[i] != r.Batch[i] {
				t.Fatalf("update %d: got %+v want %+v", i, got.Batch[i], r.Batch[i])
			}
		}
	}
}

// TestRecordTraceTailRoundTrip pins the extended record layout: trace ID
// and wall-clock stamp survive the codec, untraced records keep the
// legacy byte layout, and legacy payloads decode with zero Trace/Nanos.
func TestRecordTraceTailRoundTrip(t *testing.T) {
	r := Record{Algo: "sssp", Batch: mkBatch(4), Nanos: 1700000000123456789}
	copy(r.Trace[:], "0123456789abcdef")
	enc := EncodeRecord(nil, r)
	got, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != r.Trace || got.Nanos != r.Nanos || got.Algo != r.Algo || len(got.Batch) != len(r.Batch) {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}

	legacy := Record{Algo: "cc", Batch: mkBatch(2)}
	legacyEnc := EncodeRecord(nil, legacy)
	withTail := EncodeRecord(nil, Record{Algo: "cc", Batch: mkBatch(2), Nanos: 1})
	if len(withTail) != len(legacyEnc)+recordTailLen {
		t.Fatalf("tail adds %d bytes, want %d", len(withTail)-len(legacyEnc), recordTailLen)
	}
	dec, err := DecodeRecord(legacyEnc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Trace != ([16]byte{}) || dec.Nanos != 0 {
		t.Fatalf("legacy record decoded with nonzero trace/nanos: %+v", dec)
	}
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Algo: "", Batch: mkBatch(2)},
		{Algo: "cc", Batch: mkBatch(5)},
		{Algo: "", Batch: mkBatch(1)},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	n, err := Replay(dir, 0, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %d records %+v, want %+v", n, got, want)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(Record{Batch: mkBatch(3)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the tail: chop bytes off the last frame, as a crash mid-write
	// would.
	seg := filepath.Join(dir, segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Reopen: the torn frame is truncated away, 3 records survive, and the
	// log accepts appends again.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Algo: "post", Batch: mkBatch(1)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var algos []string
	n, err := Replay(dir, 0, func(r Record) error { algos = append(algos, r.Algo); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || algos[3] != "post" {
		t.Fatalf("after torn-tail reopen: %d records, algos %v", n, algos)
	}
}

func TestCorruptMidFrameStopsPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Batch: mkBatch(2)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip one payload byte in the middle frame.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(dir, 0, nil)
	if err != nil {
		t.Fatal(err) // single segment: a corrupt tail is a clean stop
	}
	if n >= 3 {
		t.Fatalf("replayed %d records through corruption", n)
	}
}

func TestCorruptionBeforeLaterSegmentsIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1}) // rotate after every record
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Batch: mkBatch(2)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := Segments(dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got segments %v", segs)
	}
	// Corrupt the first segment; later segments hold records beyond the
	// hole, so Replay must surface an error rather than silently skip.
	seg := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(seg)
	data[len(data)-1] ^= 0xff
	os.WriteFile(seg, data, 0o644)
	if _, err := Replay(dir, 0, nil); err == nil {
		t.Fatal("expected error replaying past a mid-log corruption hole")
	}
}

func TestRotateAndRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Batch: mkBatch(1)})
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotate returned seq %d, want 2", seq)
	}
	l.Append(Record{Algo: "after", Batch: mkBatch(1)})
	if err := l.RemoveBefore(seq); err != nil {
		t.Fatal(err)
	}
	l.Close()
	var algos []string
	n, err := Replay(dir, seq, func(r Record) error { algos = append(algos, r.Algo); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || algos[0] != "after" {
		t.Fatalf("replay from %d: %d records %v", seq, n, algos)
	}
	if segs, _ := Segments(dir); len(segs) != 1 || segs[0] != seq {
		t.Fatalf("segments after prune: %v", segs)
	}
}

func TestSyncHookSkipsFsync(t *testing.T) {
	dir := t.TempDir()
	drop := false
	l, err := Open(dir, Options{SyncHook: func() bool { return drop }})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Batch: mkBatch(1)}); err != nil {
		t.Fatal(err)
	}
	_, syncsBefore := l.Stats()
	drop = true
	if err := l.Append(Record{Batch: mkBatch(1)}); err != nil {
		t.Fatal(err)
	}
	appends, syncsAfter := l.Stats()
	if appends != 2 {
		t.Fatalf("appends = %d, want 2", appends)
	}
	if syncsAfter != syncsBefore {
		t.Fatalf("fsync happened under a dropping hook: %d -> %d", syncsBefore, syncsAfter)
	}
}

func TestIntervalPolicyFlushesOnClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{Batch: mkBatch(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := Replay(dir, 0, nil); err != nil || n != 10 {
		t.Fatalf("replay after interval close: n=%d err=%v", n, err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpoint{
		Epoch:      42,
		ReplayFrom: 7,
		Algos: []AlgoState{
			{Name: "sssp", Graph: []byte("graphbytes"), State: []byte{1, 2, 3}},
			{Name: "dfs", Graph: nil, State: []byte{}},
		},
	}
	if _, err := WriteCheckpoint(dir, c); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 42 || got.ReplayFrom != 7 || len(got.Algos) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Algos[0].Name != "sssp" || string(got.Algos[0].Graph) != "graphbytes" {
		t.Fatalf("algo 0: %+v", got.Algos[0])
	}
}

func TestLatestCheckpointSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	oldCk := &Checkpoint{Epoch: 1, ReplayFrom: 1, Algos: []AlgoState{{Name: "cc"}}}
	if _, err := WriteCheckpoint(dir, oldCk); err != nil {
		t.Fatal(err)
	}
	newPath, err := WriteCheckpoint(dir, &Checkpoint{Epoch: 9, ReplayFrom: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint; recovery must fall back to epoch 1.
	data, _ := os.ReadFile(newPath)
	data[len(data)/2] ^= 0x01
	os.WriteFile(newPath, data, 0o644)
	got, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != 1 {
		t.Fatalf("fallback checkpoint: %+v", got)
	}
	// Truncated-to-zero (crash during an overwrite) must also fall back.
	os.WriteFile(newPath, nil, 0o644)
	if got, err = LatestCheckpoint(dir); err != nil || got == nil || got.Epoch != 1 {
		t.Fatalf("fallback past empty file: %+v err=%v", got, err)
	}
}

func TestLatestCheckpointEmptyDir(t *testing.T) {
	got, err := LatestCheckpoint(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("empty dir: %+v err=%v", got, err)
	}
	got, err = LatestCheckpoint(filepath.Join(t.TempDir(), "missing"))
	if err != nil || got != nil {
		t.Fatalf("missing dir: %+v err=%v", got, err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for _, e := range []uint64{1, 2, 3, 4} {
		if _, err := WriteCheckpoint(dir, &Checkpoint{Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneCheckpoints(dir, 2); err != nil {
		t.Fatal(err)
	}
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("after prune: %v", seqs)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			var err error
			for i := 0; i < each && err == nil; i++ {
				err = l.Append(Record{Batch: mkBatch(1 + w%3)})
			}
			done <- err
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	appends, syncs := l.Stats()
	l.Close()
	if appends != writers*each {
		t.Fatalf("appends = %d, want %d", appends, writers*each)
	}
	// The point of group commit: far fewer fsyncs than appends. This is
	// timing-dependent, so only assert the invariant syncs <= appends.
	if syncs > appends {
		t.Fatalf("syncs %d > appends %d", syncs, appends)
	}
	if n, err := Replay(dir, 0, nil); err != nil || n != writers*each {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
}
