package incgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestParallelServeSixClassDifferential is the whole-fleet differential
// test of the parallel execution mode: all six query classes are hosted
// twice — once sequential, once with Workers: 4 — fed the same randomized
// update stream, and every pair of final published views must be
// deep-equal. The engine-backed classes (SSSP, CC) actually partition
// their repair rounds; the specialized maintainers (Sim, DFS, LCC, BC)
// ignore the worker setting and must be byte-for-byte unaffected by it.
// Run under -race this also exercises the worker pool's synchronization.
func TestParallelServeSixClassDifferential(t *testing.T) {
	const nodes, chunks, chunkLen = 300, 5, 60
	for seed := int64(0); seed < 3; seed++ {
		base := PowerLawGraph(seed+100, nodes, 5, false)
		pattern := RandomPattern(seed, 4, 5, 3)
		stream := make(Batch, 0, chunks*chunkLen)
		rng := rand.New(rand.NewSource(seed + 7))
		for len(stream) < cap(stream) {
			u := NodeID(rng.Intn(nodes))
			v := NodeID(rng.Intn(nodes))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				stream = append(stream, Update{Kind: DeleteEdge, From: u, To: v})
			} else {
				stream = append(stream, Update{Kind: InsertEdge, From: u, To: v, W: int64(rng.Intn(9) + 1)})
			}
		}

		build := func(workers int) map[string]*ServeHost {
			opt := ServeOptions{MaxBatch: chunkLen, MaxWait: time.Millisecond, Workers: workers}
			return map[string]*ServeHost{
				"sssp": NewServeHost(ServeSSSP(NewIncSSSP(base.Clone(), 0), 0), opt),
				"cc":   NewServeHost(ServeCC(NewIncCC(base.Clone())), opt),
				"sim":  NewServeHost(ServeSim(NewIncSim(base.Clone(), pattern)), opt),
				"dfs":  NewServeHost(ServeDFS(NewIncDFS(base.Clone())), opt),
				"lcc":  NewServeHost(ServeLCC(NewIncLCC(base.Clone())), opt),
				"bc":   NewServeHost(ServeBC(NewIncBC(base.Clone())), opt),
			}
		}
		seq, par := build(0), build(4)
		for _, hosts := range []map[string]*ServeHost{seq, par} {
			for _, h := range hosts {
				for i := 0; i < chunks; i++ {
					if err := h.Submit(stream[i*chunkLen : (i+1)*chunkLen]); err != nil {
						t.Fatal(err)
					}
				}
				h.Close()
			}
		}
		for algo, hs := range seq {
			hp := par[algo]
			if a, b := hs.View(), hp.View(); !reflect.DeepEqual(a.Data, b.Data) {
				t.Fatalf("seed %d %s: parallel host's final view differs from sequential", seed, algo)
			}
			if a, b := hs.View().Epoch, hp.View().Epoch; a != b {
				t.Fatalf("seed %d %s: epochs diverged: %d vs %d", seed, algo, a, b)
			}
		}
		// The engine-backed hosts must report the worker configuration.
		if st := par["sssp"].Stats(); st.Workers != 4 {
			t.Fatalf("seed %d: sssp host Workers = %d, want 4", seed, st.Workers)
		}
		if st := par["cc"].Stats(); st.Workers != 4 {
			t.Fatalf("seed %d: cc host Workers = %d, want 4", seed, st.Workers)
		}
		// Specialized maintainers don't implement the extension: the host
		// must fall back to sequential and say so.
		for _, algo := range []string{"dfs", "lcc", "bc", "sim"} {
			if st := par[algo].Stats(); st.Workers != 0 {
				t.Fatalf("seed %d: %s host claims workers %d without support", seed, algo, st.Workers)
			}
		}
	}
}
