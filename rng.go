package incgraph

import "math/rand"

// newRNG builds the deterministic random source used by the workload
// helpers.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
