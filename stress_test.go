package incgraph

// Long-haul stress tests: every maintainer is driven through many rounds
// of mixed update batches and cross-checked against batch recomputation
// after each round. Multi-round runs are what expose timestamp-staleness
// bugs — a single round can pass while the auxiliary structures rot.

import (
	"reflect"
	"testing"

	"incgraph/internal/bc"
	"incgraph/internal/lcc"
)

const (
	stressRounds = 40
	stressBatch  = 25
)

func TestStressSSSP(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := PowerLawGraph(10, 400, 8, directed)
		inc := NewIncSSSP(g, 0)
		for round := 0; round < stressRounds; round++ {
			inc.Apply(RandomUpdates(int64(round), inc.Graph(), stressBatch, 0.5))
			if !reflect.DeepEqual(inc.Dist(), SSSP(inc.Graph(), 0)) {
				t.Fatalf("directed=%v round %d: distances diverged", directed, round)
			}
		}
	}
}

func TestStressCC(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := PowerLawGraph(11, 400, 6, directed)
		inc := NewIncCC(g)
		for round := 0; round < stressRounds; round++ {
			inc.Apply(RandomUpdates(int64(100+round), inc.Graph(), stressBatch, 0.5))
			if !reflect.DeepEqual(inc.Labels(), ConnectedComponents(inc.Graph())) {
				t.Fatalf("directed=%v round %d: labels diverged", directed, round)
			}
		}
	}
}

func TestStressSim(t *testing.T) {
	g := PowerLawGraph(12, 400, 8, true)
	q := RandomPattern(13, 4, 6, 5)
	inc := NewIncSim(g, q)
	for round := 0; round < stressRounds; round++ {
		inc.Apply(RandomUpdates(int64(200+round), inc.Graph(), stressBatch, 0.5))
		if !inc.Relation().Equal(Simulation(inc.Graph(), q)) {
			t.Fatalf("round %d: relation diverged", round)
		}
	}
}

func TestStressDFS(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := PowerLawGraph(14, 300, 7, directed)
		inc := NewIncDFS(g)
		for round := 0; round < stressRounds; round++ {
			inc.Apply(RandomUpdates(int64(300+round), inc.Graph(), stressBatch, 0.5))
			if !inc.Tree().Equal(DFS(inc.Graph())) {
				t.Fatalf("directed=%v round %d: tree diverged", directed, round)
			}
		}
	}
}

func TestStressLCC(t *testing.T) {
	g := PowerLawGraph(15, 350, 8, false)
	inc := NewIncLCC(g)
	for round := 0; round < stressRounds; round++ {
		inc.Apply(RandomUpdates(int64(400+round), inc.Graph(), stressBatch, 0.5))
		if !inc.Result().Equal(lcc.Run(inc.Graph())) {
			t.Fatalf("round %d: coefficients diverged", round)
		}
	}
}

func TestStressBC(t *testing.T) {
	g := PowerLawGraph(16, 300, 5, false)
	inc := NewIncBC(g)
	for round := 0; round < stressRounds; round++ {
		inc.Apply(RandomUpdates(int64(500+round), inc.Graph(), stressBatch, 0.5))
		if !inc.Result().Equivalent(bc.Run(inc.Graph())) {
			t.Fatalf("round %d: biconnectivity diverged", round)
		}
	}
}

// TestStressInterleavedVertexUpdates drives node insertions and deletions
// through the edge-update dual (§4) across rounds.
func TestStressInterleavedVertexUpdates(t *testing.T) {
	g := PowerLawGraph(17, 200, 6, true)
	incS := NewIncSSSP(g, 0)
	incC := NewIncCC(g.Clone())
	for round := 0; round < 15; round++ {
		// Add a node wired to two random existing nodes.
		gs := incS.Graph()
		v := gs.AddNode(0)
		incC.Graph().AddNode(0)
		b := Batch{
			{Kind: InsertEdge, From: NodeID(round % 50), To: v, W: 3},
			{Kind: InsertEdge, From: v, To: NodeID((round * 7) % 50), W: 2},
		}
		b = append(b, RandomUpdates(int64(600+round), gs, 10, 0.5)...)
		incS.Apply(b)
		incC.Apply(b)
		if !reflect.DeepEqual(incS.Dist(), SSSP(gs, 0)) {
			t.Fatalf("round %d: SSSP diverged after vertex insert", round)
		}
		if !reflect.DeepEqual(incC.Labels(), ConnectedComponents(incC.Graph())) {
			t.Fatalf("round %d: CC diverged after vertex insert", round)
		}
	}
}
